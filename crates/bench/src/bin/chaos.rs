//! `chaos` — the fault-injection differential harness.
//!
//! Where `simcheck` establishes that clean runs are deterministic and
//! conservative, `chaos` establishes the same under adversity. Three
//! passes:
//!
//! 1. **Fuzz + replay**: randomized `(config, FaultPlan, OverloadConfig,
//!    hotplug schedule)` tuples across all five [`ListenKind`]s, each run
//!    twice. Both runs must produce bit-identical fingerprints and equal
//!    audits (the fault schedule is part of the audit, so replay equality
//!    covers the faults actually injected), and every conservation audit
//!    must hold — in particular the client lifecycle law: every
//!    connection ever opened completed, timed out, hit the SYN-retry
//!    cap, or is still live. Any failure is shrunk (config, plan,
//!    overload, and hotplug knobs — including individual stall windows)
//!    to a minimal repro, like `simcheck`.
//! 2. **Cluster fuzz + replay**: randomized 2–4 host topologies — LB
//!    policy, fabric latency/jitter/loss, flash crowds, and random
//!    crash/restart/drain schedules — each run twice through
//!    [`app::ClusterRunner`]. Replay equality covers the cluster
//!    fingerprint and every LB/retry/fault counter, the eviction log,
//!    and the goodput timeline; the cluster conservation audit must
//!    hold on every run. Failures shrink over topology knobs (events,
//!    fabric, flash, LB policy, hosts, cores, rate, windows) to a
//!    minimal paste-able repro.
//! 3. **Ordering**: at saturating load with moderate packet loss,
//!    SYN-overflow drops, and client retransmission, the paper's ranking
//!    `Affinity >= Fine >= Stock` must survive (with a small slack for
//!    noise) — faults must not invert the result the repo exists to
//!    reproduce.
//! 4. **Loss sweep** (`--loss-sweep`): served throughput and connection
//!    outcomes per listen kind across drop rates 0..10%; the source of
//!    EXPERIMENTS.md's fault-tolerance table. Off by default.
//!
//! Writes `results/chaos.json` and exits nonzero on any failure.
//!
//! Usage: `chaos [--cases N] [--seed S] [--smoke] [--loss-sweep] [--out PATH]`

use app::{
    ClusterConfig, ClusterResult, ClusterRunner, FlashCrowd, LbPolicy, ListenKind, RunConfig,
    RunResult, Runner, ServerKind, Workload,
};
use bench::quick_config;
use metrics::json::Json;
use sim::fabric::{FabricConfig, HostEvent, HostEventKind};
use sim::fault::{FaultPlan, RetransPolicy, StallWindow};
use sim::overload::{HotplugEvent, OverloadConfig, ReapPolicy, WatchdogPolicy};
use sim::rng::SimRng;
use sim::time::{ms, us};
use sim::topology::Machine;

fn main() {
    let opts = Opts::parse();
    bench::header("chaos", "fault-injection fuzzing + differential checks");
    println!(
        "fuzz cases: {}   base seed: {}   loss sweep: {}",
        opts.cases,
        opts.seed,
        if opts.loss_sweep { "on" } else { "off" }
    );

    let fuzz = fuzz_pass(&opts);
    let cluster = cluster_pass(&opts);
    let ordering = ordering_pass(&opts);
    let sweep = opts.loss_sweep.then(loss_sweep);

    let ok = fuzz.failures.is_empty() && cluster.failures.is_empty() && ordering.ok;
    let mut report = Json::obj()
        .field("cases", opts.cases)
        .field("base_seed", opts.seed)
        .field("fuzz", fuzz.to_json())
        .field("cluster", cluster.to_json())
        .field("ordering", ordering.to_json());
    if let Some(sweep) = &sweep {
        report = report.field("loss_sweep", sweep.clone());
    }
    let report = report.field("ok", ok);
    bench::write_artifact(&opts.out, &report);

    if ok {
        println!(
            "chaos: OK ({} fuzz + {} cluster cases replayed, ordering holds under loss)",
            opts.cases, cluster.cases
        );
    } else {
        println!(
            "chaos: FAILED ({} fuzz failures, {} cluster failures, ordering ok: {})",
            fuzz.failures.len(),
            cluster.failures.len(),
            ordering.ok
        );
        std::process::exit(1);
    }
}

struct Opts {
    cases: usize,
    seed: u64,
    out: String,
    loss_sweep: bool,
}

impl Opts {
    fn parse() -> Self {
        let mut args = bench::Args::parse(
            "chaos [--cases N] [--seed S] [--smoke] [--loss-sweep] [--out PATH]",
        );
        let smoke = args.flag("--smoke");
        let opts = Opts {
            cases: args
                .parsed("--cases")
                .unwrap_or(if smoke { 12 } else { 48 }),
            seed: args.parsed("--seed").unwrap_or(0xC4A05),
            out: args
                .value("--out")
                .unwrap_or_else(|| "results/chaos.json".to_string()),
            loss_sweep: args.flag("--loss-sweep"),
        };
        args.finish();
        opts
    }
}

fn label(cfg: &RunConfig) -> String {
    let p = &cfg.fault;
    let o = &cfg.overload;
    format!(
        "{} {} {} cores={} rate={:.0} seed={} | drop={} dup={} reorder={} mask={:#x} syn_of={} retrans={} stalls={} | cookies={} reap={} wd={} hotplug={}",
        cfg.machine.name,
        cfg.listen.label(),
        cfg.server.label(),
        cfg.cores,
        cfg.conn_rate,
        cfg.seed,
        p.drop_p,
        p.dup_p,
        p.reorder_p,
        p.ring_mask,
        p.syn_overflow_drop,
        p.retrans.is_some(),
        p.stalls.len(),
        o.syn_cookies,
        o.reap.is_some(),
        o.watchdog.is_some(),
        cfg.hotplug.len()
    )
}

// ------------------------------------------------------------------ fuzz

/// Draws one randomized fault plan. Probabilities come from bounded
/// discrete sets: duplication and reordering compound (a duplicate can be
/// duplicated again), so rates near 1.0 would melt the event queue
/// without testing anything new; stall windows stay well inside the
/// audit's busy-overhang allowance.
fn random_plan(rng: &mut SimRng, cores: usize) -> FaultPlan {
    let mut p = FaultPlan::none();
    if rng.chance(0.2) {
        // Every fifth case runs the disabled plan, so the neutral path
        // (no extra events, no RNG draws) stays fuzzed too.
        return p;
    }
    p.drop_p = [0.0, 0.0, 0.01, 0.02, 0.05, 0.1][rng.index(6)];
    p.dup_p = [0.0, 0.0, 0.01, 0.05, 0.15][rng.index(5)];
    p.reorder_p = [0.0, 0.0, 0.05, 0.2, 0.4][rng.index(5)];
    p.reorder_delay = [us(5), us(50), ms(1)][rng.index(3)];
    if rng.chance(0.15) {
        // Restrict packet faults to a random subset of rings; bit 0 is
        // forced so at least one ring can fault.
        p.ring_mask = rng.next_u64() | 1;
    }
    p.syn_overflow_drop = rng.chance(0.4);
    if rng.chance(0.7) {
        p.retrans = Some(RetransPolicy {
            rto: [ms(20), ms(50)][rng.index(2)],
            max_attempts: rng.range(2, 6) as u32,
        });
    }
    for _ in 0..rng.below(3) {
        p.stalls.push(StallWindow {
            core: rng.below(cores as u64) as u16,
            at: ms(10) + rng.below(ms(250)),
            dur: us(rng.range(50, 2_000)),
        });
    }
    p
}

/// Draws one randomized overload plane. Disabled ~40% of the time so the
/// neutral path (no cookie checks, no reap timers, no watchdog events)
/// stays fuzzed against the fingerprint-neutrality guarantee.
fn random_overload(rng: &mut SimRng) -> OverloadConfig {
    let mut o = OverloadConfig::none();
    if rng.chance(0.4) {
        return o;
    }
    o.syn_cookies = rng.chance(0.6);
    if rng.chance(0.5) {
        o.reap = Some(ReapPolicy {
            ttl: [ms(5), ms(20), ms(50)][rng.index(3)],
            synack_retries: rng.range(0, 3) as u32,
        });
    }
    if rng.chance(0.4) {
        o.watchdog = Some(WatchdogPolicy {
            interval: [ms(5), ms(10)][rng.index(2)],
            dead_after: [ms(20), ms(50)][rng.index(2)],
        });
    }
    if rng.chance(0.3) {
        o.half_open_cap = Some(rng.range(8, 256) as usize);
    }
    o
}

/// Draws a random hotplug schedule: ~30% of multi-core cases get one or
/// two core deaths, most followed by a revival, all inside the run
/// window so both transitions actually dispatch.
fn random_hotplug(rng: &mut SimRng, cores: usize) -> Vec<HotplugEvent> {
    let mut h = Vec::new();
    if cores < 2 || !rng.chance(0.3) {
        return h;
    }
    for _ in 0..rng.range(1, 2) {
        let core = rng.below(cores as u64) as u16;
        let down_at = ms(10) + rng.below(ms(200));
        h.push(HotplugEvent {
            core,
            at: down_at,
            up: false,
        });
        if rng.chance(0.7) {
            h.push(HotplugEvent {
                core,
                at: down_at + ms(rng.range(10, 120)),
                up: true,
            });
        }
    }
    h
}

/// Draws one randomized configuration across all five listen kinds, then
/// attaches a random fault plan, overload plane, and hotplug schedule.
fn random_case(rng: &mut SimRng) -> RunConfig {
    let machine = if rng.chance(0.5) {
        Machine::amd48()
    } else {
        Machine::intel80()
    };
    let listen = ListenKind::ALL[rng.index(ListenKind::ALL.len())];
    let server = if rng.chance(0.5) {
        ServerKind::apache()
    } else {
        ServerKind::lighttpd()
    };
    let cores = [1usize, 2, 4, 8][rng.index(4)];
    let rate_per_core = [500.0, 2_000.0, 8_000.0][rng.index(3)];
    let mut cfg = quick_config(
        machine,
        cores,
        listen,
        server,
        rate_per_core * cores as f64,
        rng.next_u64(),
    );
    cfg.workload = match rng.below(3) {
        0 => Workload::base(),
        1 => Workload::with_requests_per_conn([1, 2, 6, 24][rng.index(4)]),
        _ => Workload::with_think(ms(rng.range(0, 120))),
    };
    cfg.steal_enabled = rng.chance(0.8);
    cfg.migrate_enabled = rng.chance(0.8);
    cfg.fault = random_plan(rng, cores);
    cfg.overload = random_overload(rng);
    cfg.hotplug = random_hotplug(rng, cores);
    cfg
}

/// Runs one `(config, plan)` case twice; returns every problem found:
/// audit violations on the first run, replay divergences between the two,
/// or a panic message if the runner blew up.
fn problems_of(cfg: &RunConfig) -> Vec<String> {
    let c1 = cfg.clone();
    let c2 = cfg.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let a = Runner::new(c1).run();
        let b = Runner::new(c2).run();
        let mut problems: Vec<String> = a
            .audit
            .violations()
            .into_iter()
            .map(|v| format!("audit: {v}"))
            .collect();
        if let Some(why) = diverges(&a, &b) {
            problems.push(format!("replay: {why}"));
        }
        problems
    }));
    match outcome {
        Ok(problems) => problems,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            vec![format!("panic: {msg}")]
        }
    }
}

fn diverges(a: &RunResult, b: &RunResult) -> Option<String> {
    if a.fingerprint != b.fingerprint {
        return Some(format!(
            "fingerprint {:#018x} != {:#018x}",
            a.fingerprint, b.fingerprint
        ));
    }
    let pairs = [
        ("served", a.served, b.served),
        ("drops_overflow", a.drops_overflow, b.drops_overflow),
        ("drops_nic", a.drops_nic, b.drops_nic),
        ("timeouts", a.timeouts, b.timeouts),
        ("conns_completed", a.conns_completed, b.conns_completed),
        ("fault.dropped", a.fault.dropped, b.fault.dropped),
        ("fault.duplicated", a.fault.duplicated, b.fault.duplicated),
        ("fault.reordered", a.fault.reordered, b.fault.reordered),
        (
            "fault.syn_backlog_drops",
            a.fault.syn_backlog_drops,
            b.fault.syn_backlog_drops,
        ),
        (
            "fault.retrans_sent",
            a.fault.retrans_sent,
            b.fault.retrans_sent,
        ),
        (
            "fault.retry_capped",
            a.fault.retry_capped,
            b.fault.retry_capped,
        ),
        ("fault.stalls_run", a.fault.stalls_run, b.fault.stalls_run),
        (
            "overload.cookies_issued",
            a.overload.cookies_issued,
            b.overload.cookies_issued,
        ),
        (
            "overload.cookies_validated",
            a.overload.cookies_validated,
            b.overload.cookies_validated,
        ),
        ("overload.reaped", a.overload.reaped, b.overload.reaped),
        (
            "overload.synack_retrans",
            a.overload.synack_retrans,
            b.overload.synack_retrans,
        ),
        (
            "overload.rehome_ops",
            a.overload.rehome_ops,
            b.overload.rehome_ops,
        ),
        (
            "overload.core_downs",
            a.overload.core_downs,
            b.overload.core_downs,
        ),
        ("overload.shed_on", a.overload.shed_on, b.overload.shed_on),
        (
            "overload.watchdog_marks",
            a.overload.watchdog_marks,
            b.overload.watchdog_marks,
        ),
    ];
    for (name, x, y) in pairs {
        if x != y {
            return Some(format!("{name} {x} != {y}"));
        }
    }
    if a.audit != b.audit {
        return Some("audit counters differ".to_string());
    }
    None
}

struct FuzzFailure {
    label: String,
    problems: Vec<String>,
    repro: String,
}

struct FuzzReport {
    cases: usize,
    failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("cases", self.cases)
            .field(
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj()
                                .field("config", f.label.clone())
                                .field(
                                    "problems",
                                    Json::Arr(
                                        f.problems.iter().map(|p| Json::Str(p.clone())).collect(),
                                    ),
                                )
                                .field("repro", f.repro.clone())
                        })
                        .collect(),
                ),
            )
            .field("ok", self.failures.is_empty())
    }
}

fn fuzz_pass(opts: &Opts) -> FuzzReport {
    println!(
        "\n[1/3] fuzz: {} randomized (config, plan) cases x 2 runs, audits enforced",
        opts.cases
    );
    let mut rng = SimRng::new(opts.seed ^ 0xC4A0_5C4A_05C4_A05C);
    let configs: Vec<RunConfig> = (0..opts.cases).map(|_| random_case(&mut rng)).collect();
    let jobs = configs.clone();
    let results = bench::sweep_map(jobs, bench::default_workers(), |cfg| problems_of(&cfg));
    let mut failures = Vec::new();
    for (cfg, problems) in configs.iter().zip(results) {
        if problems.is_empty() {
            continue;
        }
        println!("  CHAOS FAILURE [{}]:", label(cfg));
        for p in &problems {
            println!("    {p}");
        }
        let minimal = shrink(cfg.clone());
        let repro = repro_test(&minimal, &problems);
        println!("  minimal repro:\n{repro}");
        failures.push(FuzzFailure {
            label: label(&minimal),
            problems,
            repro,
        });
    }
    println!("  {} cases, {} failures", opts.cases, failures.len());
    FuzzReport {
        cases: opts.cases,
        failures,
    }
}

/// Greedy shrink over config *and* plan knobs: repeatedly tries
/// simplifying one knob and keeps any change that still fails, until a
/// fixpoint.
fn shrink(mut cfg: RunConfig) -> RunConfig {
    let still_fails = |c: &RunConfig| !problems_of(c).is_empty();
    if !still_fails(&cfg) {
        // Flaky under replay — itself a determinism bug; report as-is.
        return cfg;
    }
    loop {
        let mut candidates: Vec<RunConfig> = Vec::new();
        // Plan knobs first: a repro with fewer active faults localizes
        // the broken interaction fastest.
        for zero in [
            |p: &mut FaultPlan| p.drop_p = 0.0,
            |p: &mut FaultPlan| p.dup_p = 0.0,
            |p: &mut FaultPlan| p.reorder_p = 0.0,
            |p: &mut FaultPlan| p.syn_overflow_drop = false,
            |p: &mut FaultPlan| p.retrans = None,
            |p: &mut FaultPlan| p.stalls.clear(),
            |p: &mut FaultPlan| p.ring_mask = u64::MAX,
        ] {
            let mut c = cfg.clone();
            zero(&mut c.fault);
            if c.fault != cfg.fault {
                candidates.push(c);
            }
        }
        // Individual stall windows: drop each one in turn, and halve the
        // duration of any still-long window, so the surviving repro pins
        // the exact window (and length) that matters.
        for i in 0..cfg.fault.stalls.len() {
            let mut c = cfg.clone();
            c.fault.stalls.remove(i);
            candidates.push(c);
        }
        for (i, w) in cfg.fault.stalls.iter().enumerate() {
            if w.dur > us(100) {
                let mut c = cfg.clone();
                c.fault.stalls[i].dur = w.dur / 2;
                candidates.push(c);
            }
        }
        // Overload-plane knobs, most drastic first.
        for simplify in [
            |o: &mut OverloadConfig| *o = OverloadConfig::none(),
            |o: &mut OverloadConfig| o.syn_cookies = false,
            |o: &mut OverloadConfig| o.reap = None,
            |o: &mut OverloadConfig| o.watchdog = None,
            |o: &mut OverloadConfig| o.half_open_cap = None,
        ] {
            let mut c = cfg.clone();
            simplify(&mut c.overload);
            if c.overload != cfg.overload {
                candidates.push(c);
            }
        }
        // Hotplug schedule: clear it, then drop one event at a time.
        if !cfg.hotplug.is_empty() {
            let mut c = cfg.clone();
            c.hotplug.clear();
            candidates.push(c);
            for i in 0..cfg.hotplug.len() {
                let mut c = cfg.clone();
                c.hotplug.remove(i);
                candidates.push(c);
            }
        }
        if cfg.cores > 1 {
            let mut c = cfg.clone();
            c.cores /= 2;
            c.max_backlog = 128 * c.cores;
            candidates.push(c);
        }
        if cfg.conn_rate > 100.0 {
            let mut c = cfg.clone();
            c.conn_rate /= 2.0;
            candidates.push(c);
        }
        if cfg.measure > ms(40) {
            let mut c = cfg.clone();
            c.measure /= 2;
            candidates.push(c);
        }
        if cfg.warmup > ms(40) {
            let mut c = cfg.clone();
            c.warmup /= 2;
            candidates.push(c);
        }
        let Some(next) = candidates.into_iter().find(|c| still_fails(c)) else {
            return cfg;
        };
        cfg = next;
    }
}

/// Formats a minimal failing case as a ready-to-paste regression test.
fn repro_test(cfg: &RunConfig, problems: &[String]) -> String {
    let machine = if cfg.machine.name.contains("amd") || cfg.machine.n_cores == 48 {
        "Machine::amd48()"
    } else {
        "Machine::intel80()"
    };
    let listen = match cfg.listen {
        ListenKind::Stock => "ListenKind::Stock",
        ListenKind::Fine => "ListenKind::Fine",
        ListenKind::Affinity => "ListenKind::Affinity",
        ListenKind::Twenty => "ListenKind::Twenty",
        ListenKind::BusyPoll => "ListenKind::BusyPoll",
    };
    let server = if cfg.server.poll_based() {
        "ServerKind::lighttpd()"
    } else {
        "ServerKind::apache()"
    };
    let p = &cfg.fault;
    let mut plan = String::new();
    if p.drop_p > 0.0 {
        plan.push_str(&format!("    cfg.fault.drop_p = {:?};\n", p.drop_p));
    }
    if p.dup_p > 0.0 {
        plan.push_str(&format!("    cfg.fault.dup_p = {:?};\n", p.dup_p));
    }
    if p.reorder_p > 0.0 {
        plan.push_str(&format!(
            "    cfg.fault.reorder_p = {:?};\n    cfg.fault.reorder_delay = {};\n",
            p.reorder_p, p.reorder_delay
        ));
    }
    if p.ring_mask != u64::MAX {
        plan.push_str(&format!("    cfg.fault.ring_mask = {:#x};\n", p.ring_mask));
    }
    if p.syn_overflow_drop {
        plan.push_str("    cfg.fault.syn_overflow_drop = true;\n");
    }
    if let Some(rp) = p.retrans {
        plan.push_str(&format!(
            "    cfg.fault.retrans = Some(RetransPolicy {{ rto: {}, max_attempts: {} }});\n",
            rp.rto, rp.max_attempts
        ));
    }
    for w in &p.stalls {
        plan.push_str(&format!(
            "    cfg.fault.stalls.push(StallWindow {{ core: {}, at: {}, dur: {} }});\n",
            w.core, w.at, w.dur
        ));
    }
    let o = &cfg.overload;
    if o.syn_cookies {
        plan.push_str("    cfg.overload.syn_cookies = true;\n");
    }
    if let Some(rp) = o.reap {
        plan.push_str(&format!(
            "    cfg.overload.reap = Some(ReapPolicy {{ ttl: {}, synack_retries: {} }});\n",
            rp.ttl, rp.synack_retries
        ));
    }
    if let Some(w) = o.watchdog {
        plan.push_str(&format!(
            "    cfg.overload.watchdog = Some(WatchdogPolicy {{ interval: {}, dead_after: {} }});\n",
            w.interval, w.dead_after
        ));
    }
    if let Some(cap) = o.half_open_cap {
        plan.push_str(&format!("    cfg.overload.half_open_cap = Some({cap});\n"));
    }
    for h in &cfg.hotplug {
        plan.push_str(&format!(
            "    cfg.hotplug.push(HotplugEvent {{ core: {}, at: {}, up: {} }});\n",
            h.core, h.at, h.up
        ));
    }
    let mut knobs = String::new();
    if !cfg.steal_enabled {
        knobs.push_str("    cfg.steal_enabled = false;\n");
    }
    if !cfg.migrate_enabled {
        knobs.push_str("    cfg.migrate_enabled = false;\n");
    }
    format!(
        "\
#[test]
fn chaos_repro() {{
    // chaos found: {}
    let mut cfg = RunConfig::new(
        {machine},
        {},
        {listen},
        {server},
        Workload::base(),
        {:.1},
    );
    cfg.warmup = {};
    cfg.measure = {};
    cfg.seed = {};
    cfg.tracked_files = {};
{knobs}{plan}    let a = Runner::new(cfg.clone()).run();
    let b = Runner::new(cfg).run();
    assert!(a.audit.is_ok(), \"{{:?}}\", a.audit.violations());
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.audit, b.audit);
}}",
        problems.join("; "),
        cfg.cores,
        cfg.conn_rate,
        cfg.warmup,
        cfg.measure,
        cfg.seed,
        cfg.tracked_files,
    )
}

// ---------------------------------------------------------- cluster fuzz

/// Draws one randomized 2–4 host cluster: LB policy, fabric
/// latency/jitter/loss, an optional flash crowd, and a random
/// crash/restart/drain schedule over a short window. Event times may
/// land anywhere in the run — including on hosts that are already down,
/// draining, or never come back — so the schedule fuzzes the fault
/// plane's edge cases, not just the orchestrated rolling-restart shape.
fn random_cluster_case(rng: &mut SimRng) -> ClusterConfig {
    let hosts = 2 + rng.index(3);
    let listen = ListenKind::ALL[rng.index(ListenKind::ALL.len())];
    let server = if rng.chance(0.5) {
        ServerKind::apache()
    } else {
        ServerKind::lighttpd()
    };
    let cores = [1usize, 2][rng.index(2)];
    let rate_per_core = [400.0, 800.0, 1_600.0][rng.index(3)];
    let mut base = quick_config(
        Machine::amd48(),
        cores,
        listen,
        server,
        rate_per_core * cores as f64,
        rng.next_u64(),
    );
    base.warmup = ms(rng.range(10, 25));
    base.measure = ms(rng.range(60, 120));
    base.workload = match rng.below(3) {
        0 => Workload::base(),
        1 => Workload::with_requests_per_conn([1, 2, 6][rng.index(3)]),
        _ => Workload::with_think(ms(rng.range(1, 10))),
    };
    let end = base.warmup + base.measure;
    let mut cfg = ClusterConfig::new(hosts, base);
    cfg.lb = LbPolicy::ALL[rng.index(LbPolicy::ALL.len())];
    if rng.chance(0.5) {
        cfg.fabric.jitter = [0, us(5), us(20)][rng.index(3)];
        cfg.fabric.loss_p = [0.0, 0.01, 0.05][rng.index(3)];
    }
    for _ in 0..rng.below(4) {
        cfg.host_events.push(HostEvent {
            host: rng.below(hosts as u64) as u16,
            at: ms(5) + rng.below(end - ms(5)),
            kind: [
                HostEventKind::Crash,
                HostEventKind::Restart,
                HostEventKind::DrainStart,
                HostEventKind::DrainDone,
            ][rng.index(4)],
        });
    }
    if rng.chance(0.2) {
        let at = ms(10) + rng.below(end / 2);
        cfg.flash = Some(FlashCrowd {
            at,
            until: at + ms(rng.range(10, 40)),
            multiplier: [1.5, 2.5][rng.index(2)],
        });
    }
    cfg
}

fn cluster_label(cfg: &ClusterConfig) -> String {
    let b = &cfg.base;
    format!(
        "hosts={} lb={} {} {} cores={} rate={:.0} seed={} | fabric lat={} jit={} loss={} | events={} flash={}",
        cfg.hosts,
        cfg.lb.label(),
        b.listen.label(),
        b.server.label(),
        b.cores,
        b.conn_rate,
        b.seed,
        cfg.fabric.latency,
        cfg.fabric.jitter,
        cfg.fabric.loss_p,
        cfg.host_events.len(),
        cfg.flash.is_some(),
    )
}

/// Runs one cluster case twice; returns audit violations from the first
/// run, replay divergences between the two, or a panic message.
fn cluster_problems_of(cfg: &ClusterConfig) -> Vec<String> {
    let c1 = cfg.clone();
    let c2 = cfg.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let a = ClusterRunner::new(c1).run();
        let b = ClusterRunner::new(c2).run();
        let mut problems: Vec<String> = a
            .audit
            .violations()
            .into_iter()
            .map(|v| format!("audit: {v}"))
            .collect();
        if let Some(why) = cluster_diverges(&a, &b) {
            problems.push(format!("replay: {why}"));
        }
        problems
    }));
    match outcome {
        Ok(problems) => problems,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".to_string());
            vec![format!("panic: {msg}")]
        }
    }
}

fn cluster_diverges(a: &ClusterResult, b: &ClusterResult) -> Option<String> {
    if a.fingerprint != b.fingerprint {
        return Some(format!(
            "fingerprint {:#018x} != {:#018x}",
            a.fingerprint, b.fingerprint
        ));
    }
    let (sa, sb) = (&a.audit.stats, &b.audit.stats);
    let pairs = [
        ("served", a.served, b.served),
        ("completed", a.completed, b.completed),
        ("timeouts", a.timeouts, b.timeouts),
        ("recovered", a.recovered, b.recovered),
        ("stranded", a.stranded, b.stranded),
        ("events_executed", a.events_executed, b.events_executed),
        (
            "timeouts_live_owner",
            a.timeouts_live_owner,
            b.timeouts_live_owner,
        ),
        (
            "timeouts_dead_owner",
            a.timeouts_dead_owner,
            b.timeouts_dead_owner,
        ),
        ("stats.arrivals", sa.arrivals, sb.arrivals),
        ("stats.attempts", sa.attempts, sb.attempts),
        ("stats.injections", sa.injections, sb.injections),
        (
            "stats.retry_injections",
            sa.retry_injections,
            sb.retry_injections,
        ),
        ("stats.misroutes", sa.misroutes, sb.misroutes),
        ("stats.no_route", sa.no_route, sb.no_route),
        ("stats.fabric_lost", sa.fabric_lost, sb.fabric_lost),
        ("stats.stranded", sa.stranded, sb.stranded),
        ("stats.stranded_retry", sa.stranded_retry, sb.stranded_retry),
        (
            "stats.retries_scheduled",
            sa.retries_scheduled,
            sb.retries_scheduled,
        ),
        ("stats.retries_sent", sa.retries_sent, sb.retries_sent),
        (
            "stats.retry_exhausted",
            sa.retry_exhausted,
            sb.retry_exhausted,
        ),
        (
            "stats.retry_budget_denied",
            sa.retry_budget_denied,
            sb.retry_budget_denied,
        ),
        ("stats.crashes", sa.crashes, sb.crashes),
        ("stats.evictions", sa.evictions, sb.evictions),
        (
            "stats.crash_undetected",
            sa.crash_undetected,
            sb.crash_undetected,
        ),
        ("stats.restarts", sa.restarts, sb.restarts),
        ("stats.drains", sa.drains, sb.drains),
        ("stats.drain_done", sa.drain_done, sb.drain_done),
        ("stats.drain_aborted", sa.drain_aborted, sb.drain_aborted),
        ("stats.drain_forced", sa.drain_forced, sb.drain_forced),
    ];
    for (name, x, y) in pairs {
        if x != y {
            return Some(format!("{name} {x} != {y}"));
        }
    }
    if a.evictions != b.evictions {
        return Some("eviction log differs".to_string());
    }
    if a.timeline != b.timeline {
        return Some("goodput timeline differs".to_string());
    }
    if a.audit != b.audit {
        return Some("cluster audit counters differ".to_string());
    }
    None
}

fn cluster_pass(opts: &Opts) -> FuzzReport {
    let cases = opts.cases.div_ceil(3).max(4);
    println!(
        "\n[2/3] cluster fuzz: {cases} randomized 2-4 host topologies x 2 runs, cluster audits enforced"
    );
    let mut rng = SimRng::new(opts.seed ^ 0xFAB_0FAB_0FAB_0FAB);
    let configs: Vec<ClusterConfig> = (0..cases).map(|_| random_cluster_case(&mut rng)).collect();
    let jobs = configs.clone();
    let results = bench::par_map(jobs, bench::default_workers(), |cfg| {
        cluster_problems_of(&cfg)
    });
    let mut failures = Vec::new();
    for (cfg, problems) in configs.iter().zip(results) {
        if problems.is_empty() {
            continue;
        }
        println!("  CLUSTER CHAOS FAILURE [{}]:", cluster_label(cfg));
        for p in &problems {
            println!("    {p}");
        }
        let minimal = cluster_shrink(cfg.clone());
        let repro = cluster_repro_test(&minimal, &problems);
        println!("  minimal repro:\n{repro}");
        failures.push(FuzzFailure {
            label: cluster_label(&minimal),
            problems,
            repro,
        });
    }
    println!("  {cases} cases, {} failures", failures.len());
    FuzzReport { cases, failures }
}

/// Greedy shrink over cluster topology knobs: the fault schedule first
/// (whole, then one event at a time), then the flash crowd, fabric, LB
/// policy, host count, and finally the single-host base knobs.
fn cluster_shrink(mut cfg: ClusterConfig) -> ClusterConfig {
    let still_fails = |c: &ClusterConfig| !cluster_problems_of(c).is_empty();
    if !still_fails(&cfg) {
        // Flaky under replay — itself a determinism bug; report as-is.
        return cfg;
    }
    loop {
        let mut candidates: Vec<ClusterConfig> = Vec::new();
        if !cfg.host_events.is_empty() {
            let mut c = cfg.clone();
            c.host_events.clear();
            candidates.push(c);
            for i in 0..cfg.host_events.len() {
                let mut c = cfg.clone();
                c.host_events.remove(i);
                candidates.push(c);
            }
        }
        if cfg.flash.is_some() {
            let mut c = cfg.clone();
            c.flash = None;
            candidates.push(c);
        }
        for simplify in [
            |f: &mut FabricConfig| *f = FabricConfig::none(),
            |f: &mut FabricConfig| f.loss_p = 0.0,
            |f: &mut FabricConfig| f.jitter = 0,
        ] {
            let mut c = cfg.clone();
            simplify(&mut c.fabric);
            if c.fabric != cfg.fabric {
                candidates.push(c);
            }
        }
        if cfg.lb != LbPolicy::ConsistentHash {
            let mut c = cfg.clone();
            c.lb = LbPolicy::ConsistentHash;
            candidates.push(c);
        }
        if cfg.hosts > 2 {
            // Dropping a host invalidates events aimed at it; keep only
            // the ones that still target a live index.
            let mut c = cfg.clone();
            c.hosts -= 1;
            c.host_events.retain(|ev| usize::from(ev.host) < c.hosts);
            candidates.push(c);
        }
        if cfg.base.cores > 1 {
            let mut c = cfg.clone();
            c.base.cores /= 2;
            c.base.max_backlog = 128 * c.base.cores;
            candidates.push(c);
        }
        if cfg.base.conn_rate > 100.0 {
            let mut c = cfg.clone();
            c.base.conn_rate /= 2.0;
            candidates.push(c);
        }
        if cfg.base.measure > ms(40) {
            let mut c = cfg.clone();
            c.base.measure /= 2;
            candidates.push(c);
        }
        if cfg.base.warmup > ms(10) {
            let mut c = cfg.clone();
            c.base.warmup /= 2;
            candidates.push(c);
        }
        let Some(next) = candidates.into_iter().find(|c| still_fails(c)) else {
            return cfg;
        };
        cfg = next;
    }
}

/// Formats a minimal failing cluster case as a ready-to-paste
/// regression test.
fn cluster_repro_test(cfg: &ClusterConfig, problems: &[String]) -> String {
    let b = &cfg.base;
    let listen = match b.listen {
        ListenKind::Stock => "ListenKind::Stock",
        ListenKind::Fine => "ListenKind::Fine",
        ListenKind::Affinity => "ListenKind::Affinity",
        ListenKind::Twenty => "ListenKind::Twenty",
        ListenKind::BusyPoll => "ListenKind::BusyPoll",
    };
    let server = if b.server.poll_based() {
        "ServerKind::lighttpd()"
    } else {
        "ServerKind::apache()"
    };
    let lb = match cfg.lb {
        LbPolicy::ConsistentHash => "LbPolicy::ConsistentHash",
        LbPolicy::LeastConn => "LbPolicy::LeastConn",
        LbPolicy::AffinityAware => "LbPolicy::AffinityAware",
    };
    let mut knobs = String::new();
    if cfg.fabric != FabricConfig::lan() {
        knobs.push_str(&format!(
            "    cfg.fabric = FabricConfig {{ latency: {}, jitter: {}, loss_p: {:?} }};\n",
            cfg.fabric.latency, cfg.fabric.jitter, cfg.fabric.loss_p
        ));
    }
    for ev in &cfg.host_events {
        knobs.push_str(&format!(
            "    cfg.host_events.push(HostEvent {{ host: {}, at: {}, kind: HostEventKind::{:?} }});\n",
            ev.host, ev.at, ev.kind
        ));
    }
    if let Some(f) = &cfg.flash {
        knobs.push_str(&format!(
            "    cfg.flash = Some(FlashCrowd {{ at: {}, until: {}, multiplier: {:?} }});\n",
            f.at, f.until, f.multiplier
        ));
    }
    format!(
        "\
#[test]
fn cluster_chaos_repro() {{
    // chaos found: {}
    let mut base = RunConfig::new(
        Machine::amd48(),
        {},
        {listen},
        {server},
        Workload::base(),
        {:.1},
    );
    base.warmup = {};
    base.measure = {};
    base.seed = {};
    base.tracked_files = {};
    let mut cfg = ClusterConfig::new({}, base);
    cfg.lb = {lb};
{knobs}    let a = ClusterRunner::new(cfg.clone()).run();
    let b = ClusterRunner::new(cfg).run();
    assert!(a.audit.violations().is_empty(), \"{{:?}}\", a.audit.violations());
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.audit, b.audit);
}}",
        problems.join("; "),
        b.cores,
        b.conn_rate,
        b.warmup,
        b.measure,
        b.seed,
        b.tracked_files,
        cfg.hosts,
    )
}

// -------------------------------------------------------------- ordering

/// Slack on the `Affinity >= Fine >= Stock` ranking: faults add noise, so
/// a ranking only counts as inverted when the lower kind wins by more
/// than this factor.
const ORDER_SLACK: f64 = 0.97;

struct OrderingReport {
    served: Vec<(String, u64)>,
    ok: bool,
    problems: Vec<String>,
}

impl OrderingReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "served",
                Json::Obj(
                    self.served
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            )
            .field(
                "problems",
                Json::Arr(self.problems.iter().map(|p| Json::Str(p.clone())).collect()),
            )
            .field("ok", self.ok)
    }
}

/// The moderate-loss plan the differential passes use: 2% drops, SYN
/// drops at a full backlog, Linux-flavoured client retransmission.
fn lossy_plan() -> FaultPlan {
    let mut p = FaultPlan::none();
    p.drop_p = 0.02;
    p.syn_overflow_drop = true;
    p.retrans = Some(RetransPolicy::default_policy());
    p
}

fn ordering_pass(opts: &Opts) -> OrderingReport {
    println!("\n[3/3] ordering: Affinity >= Fine >= Stock at saturation, 2% loss");
    // 24 cores: past the point where stock's accept lock dominates
    // (160k/24 ~ 6.7k/core vs fine's 8.7k and affinity's 9.8k), offered
    // load above everyone's capacity so served == capacity.
    let cores = 24;
    let configs: Vec<RunConfig> = bench::IMPLS
        .iter()
        .map(|&listen| {
            let mut cfg = quick_config(
                Machine::amd48(),
                cores,
                listen,
                ServerKind::apache(),
                12_000.0 * cores as f64,
                opts.seed,
            );
            cfg.fault = lossy_plan();
            cfg
        })
        .collect();
    let results = bench::sweep_fixed_workers(configs.clone(), bench::default_workers());
    let served: Vec<(String, u64)> = configs
        .iter()
        .zip(&results)
        .map(|(cfg, r)| (cfg.listen.label().to_string(), r.served))
        .collect();
    let mut problems = Vec::new();
    for (cfg, r) in configs.iter().zip(&results) {
        for v in r.audit.violations() {
            problems.push(format!("[{}] audit: {v}", label(cfg)));
        }
    }
    let get = |kind: ListenKind| {
        results[bench::IMPLS
            .iter()
            .position(|&k| k == kind)
            .expect("in IMPLS")]
        .served as f64
    };
    let (stock, fine, affinity) = (
        get(ListenKind::Stock),
        get(ListenKind::Fine),
        get(ListenKind::Affinity),
    );
    if affinity < fine * ORDER_SLACK {
        problems.push(format!(
            "ordering inverted under loss: affinity served {affinity} < fine {fine}"
        ));
    }
    if fine < stock * ORDER_SLACK {
        problems.push(format!(
            "ordering inverted under loss: fine served {fine} < stock {stock}"
        ));
    }
    for (k, s) in &served {
        println!("  {k:>8}: served {s}");
    }
    for p in &problems {
        println!("  ORDERING {p}");
    }
    let ok = problems.is_empty();
    println!(
        "  ordering under 2% loss: {}",
        if ok { "holds" } else { "VIOLATED" }
    );
    OrderingReport {
        served,
        ok,
        problems,
    }
}

// ------------------------------------------------------------ loss sweep

/// Drop rates the sweep walks (EXPERIMENTS.md "Fault tolerance").
const LOSS_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.1];

fn loss_sweep() -> Json {
    println!("\n[extra] loss sweep: drop rates {LOSS_RATES:?} x all listen kinds");
    // Sustainable load so the table shows what loss costs, not what
    // overload costs: 1.5k conns/s/core x 2 requests = 3k rps/core,
    // under every kind's capacity. Short connections (no think time) and
    // a client timeout shorter than the run let most connections reach a
    // terminal state inside the measurement, making the completion and
    // timeout columns meaningful.
    let cores = 8;
    let mut configs = Vec::new();
    for &drop_p in &LOSS_RATES {
        for &listen in &ListenKind::ALL {
            let mut cfg = quick_config(
                Machine::amd48(),
                cores,
                listen,
                ServerKind::apache(),
                1_500.0 * cores as f64,
                7,
            );
            cfg.workload = Workload::with_requests_per_conn(2);
            cfg.workload.timeout = ms(120);
            cfg.fault = lossy_plan();
            cfg.fault.drop_p = drop_p;
            configs.push(cfg);
        }
    }
    let results = bench::sweep_fixed_workers(configs.clone(), bench::default_workers());
    let mut t = metrics::table::Table::new(&[
        "drop_p",
        "kind",
        "served",
        "completed%",
        "timeout",
        "retry_cap",
        "retrans",
    ]);
    let mut rows = Vec::new();
    for (cfg, r) in configs.iter().zip(&results) {
        let c = &r.audit.client;
        let done_pct = 100.0 * c.completed as f64 / c.started.max(1) as f64;
        t.row_owned(vec![
            format!("{:.2}", cfg.fault.drop_p),
            cfg.listen.label().to_string(),
            r.served.to_string(),
            format!("{done_pct:.1}"),
            c.timed_out.to_string(),
            c.retry_capped.to_string(),
            r.fault.retrans_sent.to_string(),
        ]);
        for v in r.audit.violations() {
            println!("  LOSS-SWEEP AUDIT [{}]: {v}", label(cfg));
        }
        rows.push(
            Json::obj()
                .field("drop_p", cfg.fault.drop_p)
                .field("kind", cfg.listen.label())
                .field("served", r.served)
                .field("completed", c.completed)
                .field("timed_out", c.timed_out)
                .field("retry_capped", c.retry_capped)
                .field("retrans_sent", r.fault.retrans_sent),
        );
    }
    print!("{}", t.render());
    Json::Arr(rows)
}
