//! Figure 2: Apache throughput per core vs. active cores on the AMD
//! machine, for Stock-, Fine-, and Affinity-Accept.
//!
//! Expected shape: Stock collapses as cores grow (total throughput goes
//! flat on the listen-socket lock); Fine ≈ 2.8× Stock at 48 cores;
//! Affinity beats Fine by ~24 % at 48 cores.

use app::ServerKind;
use bench::{amd_core_counts, base_config, sweep_saturation, throughput_series, IMPLS};
use sim::topology::Machine;

fn main() {
    bench::header("fig2", "Apache, AMD machine: requests/sec/core vs cores");
    let xs = amd_core_counts();
    for listen in IMPLS {
        let cfgs = xs
            .iter()
            .map(|c| base_config(Machine::amd48(), *c, listen, ServerKind::apache()))
            .collect();
        let rs = sweep_saturation(cfgs);
        println!();
        print!("{}", throughput_series(listen.label(), &xs, &rs));
        if let (Some(last), Some(lastx)) = (rs.last(), xs.last()) {
            println!(
                "# {} at {} cores: total {:.0} req/s, idle {:.1}%, affinity {:.0}%",
                listen.label(),
                lastx,
                last.rps,
                last.idle_frac * 100.0,
                last.affinity_frac * 100.0
            );
        }
    }
}
