//! `scenario` — runs the declarative scenario catalog.
//!
//! Loads scenario files (one `--file` each, or every `*.json` under
//! `--dir`, default `scenarios/`), runs each one, evaluates its gates and
//! golden fingerprints, and writes the schema-pinned
//! `results/scenarios.json` artifact. Exits nonzero if any scenario
//! fails.
//!
//! `--smoke` restricts the catalog to the quick subset CI runs on every
//! push; the full corpus runs nightly. `--record` re-runs each
//! fixed-rate scenario and rewrites its `golden` block in place from the
//! measured fingerprints — the explicit, reviewable step after an
//! intentional simulation change.
//!
//! Usage: `scenario [--file F]... [--dir D] [--smoke] [--record]
//! [--workers N] [--out PATH] [--check]`

use bench::scenario::{catalog_path, load_dir, load_file, record_golden, Scenario, ScenarioReport};
use metrics::json::Json;
use std::path::PathBuf;

const USAGE: &str =
    "scenario [--file F]... [--dir D] [--smoke] [--record] [--workers N] [--out PATH] [--check]";

fn main() {
    let mut args = bench::Args::parse(USAGE);
    let files = args.values("--file");
    let dir = args.value("--dir");
    let smoke = args.flag("--smoke");
    let record = args.flag("--record");
    let workers = args
        .parsed::<usize>("--workers")
        .unwrap_or_else(bench::default_workers);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "results/scenarios.json".to_string());
    args.finish();

    bench::header("scenario", "declarative scenario catalog");

    let catalog = load_catalog(&files, dir.as_deref(), smoke);
    println!(
        "scenarios: {}   workers: {}   smoke: {}",
        catalog.len(),
        workers,
        if smoke { "on" } else { "off" }
    );

    if record {
        if cfg!(feature = "fast") {
            fail(
                "--record needs the instrumented build: the fast feature \
                 compiles fingerprints to zero",
            );
        }
        for (path, s) in &catalog {
            if !s.supports_golden() {
                println!(
                    "skip    {:<28} (saturation search cannot pin goldens)",
                    s.name
                );
                continue;
            }
            // Strip the stale goldens so only real gate failures surface.
            let mut bare = s.clone();
            bare.golden.clear();
            let report = bare.run(workers);
            for p in &report.problems {
                println!("  problem: {p}");
            }
            record_golden(path, &report).unwrap_or_else(|e| fail(&e));
            println!("recorded {:<28} -> {}", s.name, path.display());
        }
        return;
    }

    let mut reports: Vec<ScenarioReport> = Vec::new();
    for (_, s) in &catalog {
        let t0 = std::time::Instant::now();
        let r = s.run(workers);
        let served: u64 = r.kinds.iter().map(|k| k.served).sum();
        println!(
            "{:<28} {:>4}   kinds={} served={} [{:.1}s]",
            r.name,
            if r.ok() { "ok" } else { "FAIL" },
            r.kinds.len(),
            served,
            t0.elapsed().as_secs_f64()
        );
        for p in &r.problems {
            println!("  problem: {p}");
        }
        reports.push(r);
    }

    let all_ok = reports.iter().all(ScenarioReport::ok);
    let artifact = Json::obj()
        .field("schema", "scenarios-v1")
        .field("smoke", smoke)
        .field("ok", all_ok)
        .field(
            "scenarios",
            Json::Arr(reports.iter().map(ScenarioReport::to_json).collect()),
        );
    bench::write_artifact(&out, &artifact);

    if all_ok {
        println!("scenario: OK ({} scenarios)", reports.len());
    } else {
        let failed = reports.iter().filter(|r| !r.ok()).count();
        println!("scenario: FAILED ({failed} of {} scenarios)", reports.len());
        std::process::exit(1);
    }
}

fn fail(e: &str) -> ! {
    eprintln!("scenario: {e}");
    std::process::exit(2)
}

/// Loads the selected catalog: explicit `--file`s if any, else the
/// scenario directory; then applies the smoke filter.
fn load_catalog(files: &[String], dir: Option<&str>, smoke: bool) -> Vec<(PathBuf, Scenario)> {
    let mut catalog: Vec<(PathBuf, Scenario)> = Vec::new();
    if files.is_empty() {
        let d = catalog_path(dir.unwrap_or("scenarios"));
        catalog = load_dir(&d).unwrap_or_else(|e| fail(&e));
    } else {
        for f in files {
            let p = catalog_path(f);
            catalog.push((p.clone(), load_file(&p).unwrap_or_else(|e| fail(&e))));
        }
    }
    if smoke {
        catalog.retain(|(_, s)| s.smoke);
    }
    if catalog.is_empty() {
        fail("no scenarios selected");
    }
    catalog
}
