//! Figure 5: Apache throughput per core vs. cores on the 80-core Intel
//! machine (two NIC ports provide a private DMA ring per core past 64).
//!
//! Expected shape: same ordering as Figure 2, but Affinity's margin over
//! Fine is smaller — the Intel interconnect's remote accesses are much
//! cheaper (200 vs 460 cycles).

use app::ServerKind;
use bench::{base_config, intel_core_counts, sweep_saturation, throughput_series, IMPLS};
use sim::topology::Machine;

fn main() {
    bench::header("fig5", "Apache, Intel machine: requests/sec/core vs cores");
    let xs = intel_core_counts();
    for listen in IMPLS {
        let cfgs = xs
            .iter()
            .map(|c| base_config(Machine::intel80(), *c, listen, ServerKind::apache()))
            .collect();
        let rs = sweep_saturation(cfgs);
        println!();
        print!("{}", throughput_series(listen.label(), &xs, &rs));
    }
}
