//! Table 5: features of contemporary 10 Gb NICs, plus the simulated
//! card's behaviour at the limits the table documents.

use metrics::table::Table;
use nic::catalog::CATALOG;
use nic::packet::RingId;
use nic::steering::{PerFlowTable, RssTable, FDIR_INSERT_CYCLES};

fn main() {
    bench::header("table5", "NIC feature comparison and modelled limits");
    let mut t = Table::new(&[
        "NIC",
        "HW DMA rings",
        "RSS DMA rings",
        "flow steering (conns)",
    ]);
    for n in CATALOG {
        t.row_owned(vec![
            n.name.into(),
            n.hw_dma_rings.into(),
            n.rss_dma_rings.into(),
            n.flow_steering_entries.unwrap_or("-").into(),
        ]);
    }
    print!("{}", t.render());

    // Demonstrate the modelled limits for the 82599.
    let rss = RssTable::new(64);
    println!(
        "\n82599 model: RSS with 64 rings addresses {} distinct rings",
        rss.distinct_rings()
    );
    let mut fdir = PerFlowTable::new(64, 32 * 1024);
    let mut flushes = 0;
    for h in 0..40_000u64 {
        fdir.insert(h * 1000, h, RingId((h % 64) as u16));
        flushes = fdir.flushes;
    }
    println!(
        "82599 model: 40,000 per-flow inserts at {} cycles each caused {} full-table flush(es)",
        FDIR_INSERT_CYCLES, flushes
    );
    println!(
        "82599 model: flow-group mode needs only {} entries for any number of connections",
        nic::steering::DEFAULT_FLOW_GROUPS
    );
}
