//! Figure 7: the effect of TCP connection reuse (requests per connection)
//! on Apache throughput (AMD, 48 cores).
//!
//! Expected shape: all implementations improve with reuse (less
//! setup/teardown); Affinity > Fine at every point; Stock converges to
//! Fine at very high reuse, where the listen lock is no longer touched
//! often enough to matter.

use app::{ListenKind, RunConfig, ServerKind, Workload};
use bench::{base_config, IMPLS};
use metrics::table::Table;
use sim::topology::Machine;

/// Requests-per-connection values swept.
pub const REUSE: [u32; 6] = [1, 6, 20, 100, 500, 1000];

fn config_for(listen: ListenKind, n: u32) -> RunConfig {
    let mut cfg = base_config(Machine::amd48(), 48, listen, ServerKind::apache());
    cfg.workload = Workload::with_requests_per_conn(n);
    // Per-request cost shrinks as per-connection overhead amortizes; the
    // guess accounts for that so the search converges quickly.
    let per_req = match listen {
        ListenKind::Stock | ListenKind::Twenty => 240_000.0 + 1_300_000.0 / f64::from(n),
        ListenKind::Fine => 210_000.0 + 380_000.0 / f64::from(n),
        ListenKind::Affinity | ListenKind::BusyPoll => 175_000.0 + 330_000.0 / f64::from(n),
    };
    let rps = 48.0 * 2.4e9 / per_req;
    cfg.conn_rate = rps / f64::from(n);
    cfg
}

fn main() {
    bench::header(
        "fig7",
        "Apache throughput vs requests per connection (AMD, 48 cores)",
    );
    let mut t = Table::new(&["req/conn", "stock", "fine", "affinity"]);
    for n in REUSE {
        let mut row = vec![n.to_string()];
        for listen in IMPLS {
            let r = app::find_saturation_budgeted(&config_for(listen, n), 4);
            row.push(format!("{:.0}", r.rps_per_core));
        }
        t.row_owned(row);
        eprintln!("# fig7: req/conn {n} done");
    }
    print!("{}", t.render());
    println!("\npaper (Figure 7): affinity above fine everywhere; stock matches");
    println!("  fine above ~5000 req/conn; all rise with reuse");
}
