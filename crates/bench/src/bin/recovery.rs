//! `recovery` — the self-healing and overload-defense harness.
//!
//! Two scenarios, each a table in EXPERIMENTS.md ("Recovery") and a gate
//! this binary enforces:
//!
//! 1. **Kill one core at saturation**: each of Stock/Fine/Affinity runs
//!    at its saturating rate, once cleanly and once with one core taken
//!    offline a quarter into the measurement window. The dead core's
//!    accept queue is re-homed and its flow groups re-steered; the served
//!    timeline (10 ms buckets) yields the time-to-recover. Gates, for
//!    Fine and Affinity: goodput retained ≥ 90% of the clean run, the
//!    per-bucket rate returns to ≥ 90% of the pre-kill rate within
//!    100 ms, zero established connections owned by live cores are lost,
//!    and every audit stays clean.
//! 2. **SYN flood**: every listen kind faces 10× its saturating
//!    connection rate with SYN cookies and half-open reaping enabled.
//!    Gates: every kind keeps serving (> 0 requests), cookies were
//!    actually issued, and the cookie/request conservation audits hold.
//!
//! Writes `results/recovery.json` and exits nonzero on any gate failure.
//!
//! Usage: `recovery [--smoke] [--out PATH]`

use app::{ListenKind, RunResult, Runner, ServerKind};
use metrics::json::Json;
use sim::overload::{HotplugEvent, ReapPolicy};
use sim::time::{ms, Cycles};
use sim::topology::Machine;

/// Goodput the kill scenario must retain, and the fraction of the
/// pre-kill per-bucket rate that counts as "recovered".
const GOODPUT_GATE: f64 = 0.90;
/// Bound on the reported time-to-recover for the gated kinds.
const TTR_BOUND: Cycles = ms(100);
/// Served-timeline bucket width.
const BUCKET: Cycles = ms(10);
/// SYN-flood load as a multiple of the saturating rate.
const FLOOD_MULTIPLE: f64 = 10.0;

fn main() {
    let opts = Opts::parse();
    bench::header("recovery", "kill-one-core and SYN-flood recovery gates");
    let kill = kill_pass(&opts);
    let flood = flood_pass(&opts);
    let ok = kill.ok && flood.ok;

    let report = Json::obj()
        .field("smoke", opts.smoke)
        .field("kill", kill.json)
        .field("flood", flood.json)
        .field("ok", ok);
    bench::write_artifact(&opts.out, &report);

    if ok {
        println!("recovery: OK (kill-one-core and SYN-flood gates hold)");
    } else {
        println!(
            "recovery: FAILED (kill ok: {}, flood ok: {})",
            kill.ok, flood.ok
        );
        std::process::exit(1);
    }
}

struct Opts {
    smoke: bool,
    out: String,
}

impl Opts {
    fn parse() -> Self {
        let mut args = bench::Args::parse("recovery [--smoke] [--out PATH]");
        let opts = Opts {
            smoke: args.flag("--smoke"),
            out: args
                .value("--out")
                .unwrap_or_else(|| "results/recovery.json".to_string()),
        };
        args.finish();
        opts
    }
}

struct PassReport {
    ok: bool,
    json: Json,
}

// ---------------------------------------------------------------- kill

/// Everything the kill scenario extracts from one (baseline, kill) pair.
struct KillRow {
    kind: ListenKind,
    baseline_served: u64,
    kill_served: u64,
    goodput_retained: f64,
    recovered: bool,
    ttr: Cycles,
    timeouts_live_owner: u64,
    timeouts_dead_owner: u64,
    rehomed_conns: u64,
    rehome_ops: u64,
    gated: bool,
    problems: Vec<String>,
}

fn kill_pass(opts: &Opts) -> PassReport {
    // Smoke keeps 24 cores: one dead core still leaves 95.8% of capacity,
    // comfortably above the 90% goodput gate; full mode runs the paper's
    // 48-core configuration.
    let (cores, warmup, measure) = if opts.smoke {
        (24, ms(200), ms(300))
    } else {
        (48, ms(300), ms(500))
    };
    let kill_core = (cores - 1) as u16;
    let kill_at = warmup + measure / 4;
    println!(
        "\n[1/2] kill-one-core: {cores} cores at saturation, core {kill_core} dies at {} ms",
        kill_at / ms(1)
    );

    let mut configs = Vec::new();
    for &listen in &bench::IMPLS {
        let mut base = bench::base_config(Machine::amd48(), cores, listen, ServerKind::apache());
        base.warmup = warmup;
        base.measure = measure;
        base.timeline_bucket = BUCKET;
        base.seed = 11;
        let mut kill = base.clone();
        kill.hotplug.push(HotplugEvent {
            core: kill_core,
            at: kill_at,
            up: false,
        });
        configs.push(base);
        configs.push(kill);
    }
    let results = bench::sweep_map(configs.clone(), bench::default_workers(), |cfg| {
        Runner::new(cfg).run()
    });

    let mut rows = Vec::new();
    for (i, &listen) in bench::IMPLS.iter().enumerate() {
        let baseline = &results[2 * i];
        let kill = &results[2 * i + 1];
        let mut problems = Vec::new();
        for (name, r) in [("baseline", baseline), ("kill", kill)] {
            for v in r.audit.violations() {
                problems.push(format!("{name} audit: {v}"));
            }
        }
        let goodput = kill.served as f64 / (baseline.served as f64).max(1.0);
        let (recovered, ttr) = time_to_recover(kill, warmup, kill_at, warmup + measure);
        let gated = matches!(listen, ListenKind::Fine | ListenKind::Affinity);
        if gated {
            if goodput < GOODPUT_GATE {
                problems.push(format!(
                    "goodput retained {goodput:.3} < {GOODPUT_GATE} after killing one of {cores} cores"
                ));
            }
            if !recovered {
                problems.push("per-bucket rate never returned to 90% of pre-kill".to_string());
            } else if ttr > TTR_BOUND {
                problems.push(format!(
                    "time-to-recover {} ms exceeds the {} ms bound",
                    ttr / ms(1),
                    TTR_BOUND / ms(1)
                ));
            }
            if kill.timeouts_live_owner > 0 {
                problems.push(format!(
                    "{} established connections on live cores were lost",
                    kill.timeouts_live_owner
                ));
            }
            if kill.overload.rehome_ops == 0 {
                problems.push("kill run never re-homed the dead core's queue".to_string());
            }
        }
        rows.push(KillRow {
            kind: listen,
            baseline_served: baseline.served,
            kill_served: kill.served,
            goodput_retained: goodput,
            recovered,
            ttr,
            timeouts_live_owner: kill.timeouts_live_owner,
            timeouts_dead_owner: kill.timeouts_dead_owner,
            rehomed_conns: kill.overload.rehomed_conns,
            rehome_ops: kill.overload.rehome_ops,
            gated,
            problems,
        });
    }

    let mut t = metrics::table::Table::new(&[
        "kind",
        "baseline",
        "killed",
        "retained%",
        "ttr_ms",
        "rehomed",
        "live_lost",
        "gate",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.kind.label().to_string(),
            r.baseline_served.to_string(),
            r.kill_served.to_string(),
            format!("{:.1}", 100.0 * r.goodput_retained),
            if r.recovered {
                (r.ttr / ms(1)).to_string()
            } else {
                "never".to_string()
            },
            r.rehomed_conns.to_string(),
            r.timeouts_live_owner.to_string(),
            if !r.gated {
                "-".to_string()
            } else if r.problems.is_empty() {
                "ok".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    for r in &rows {
        for p in &r.problems {
            println!("  KILL [{:>8}] {p}", r.kind.label());
        }
    }
    let ok = rows.iter().all(|r| r.problems.is_empty());
    println!(
        "  kill-one-core gates: {}",
        if ok { "hold" } else { "VIOLATED" }
    );

    let json = Json::obj()
        .field("cores", cores)
        .field("kill_core", u64::from(kill_core))
        .field("kill_at_ms", kill_at / ms(1))
        .field("bucket_ms", BUCKET / ms(1))
        .field(
            "kinds",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("kind", r.kind.label())
                            .field("baseline_served", r.baseline_served)
                            .field("kill_served", r.kill_served)
                            .field("goodput_retained", r.goodput_retained)
                            .field("recovered", r.recovered)
                            .field(
                                "time_to_recover_ms",
                                if r.recovered {
                                    Json::U64(r.ttr / ms(1))
                                } else {
                                    Json::Null
                                },
                            )
                            .field("timeouts_live_owner", r.timeouts_live_owner)
                            .field("timeouts_dead_owner", r.timeouts_dead_owner)
                            .field("rehomed_conns", r.rehomed_conns)
                            .field("rehome_ops", r.rehome_ops)
                            .field("gated", r.gated)
                            .field(
                                "problems",
                                Json::Arr(
                                    r.problems.iter().map(|p| Json::Str(p.clone())).collect(),
                                ),
                            )
                            .field("ok", r.problems.is_empty())
                    })
                    .collect(),
            ),
        )
        .field("ok", ok);
    PassReport { ok, json }
}

/// Reads the recovery time off the kill run's served timeline: the first
/// post-kill bucket whose served count returns to ≥ 90% of the pre-kill
/// per-bucket average, measured from the kill instant to that bucket's
/// end. Only complete buckets count on both sides.
fn time_to_recover(
    r: &RunResult,
    warmup: Cycles,
    kill_at: Cycles,
    end_at: Cycles,
) -> (bool, Cycles) {
    let b = |t: Cycles| (t / BUCKET) as usize;
    let bucket = |i: usize| r.timeline.get(i).copied().unwrap_or(0);
    // Pre-kill rate: complete buckets inside [warmup, kill).
    let (pre_lo, pre_hi) = (b(warmup) + 1, b(kill_at));
    if pre_hi <= pre_lo {
        return (false, 0);
    }
    let pre: u64 = (pre_lo..pre_hi).map(bucket).sum();
    let pre_rate = pre as f64 / (pre_hi - pre_lo) as f64;
    let threshold = GOODPUT_GATE * pre_rate;
    // Post-kill: skip the partial bucket the kill lands in, stop before
    // the partial bucket at run end.
    for i in b(kill_at) + 1..b(end_at) {
        if bucket(i) as f64 >= threshold {
            let recovered_at = (i as u64 + 1) * BUCKET;
            return (true, recovered_at.saturating_sub(kill_at));
        }
    }
    (false, 0)
}

// --------------------------------------------------------------- flood

fn flood_pass(opts: &Opts) -> PassReport {
    let cores = 8;
    let (warmup, measure) = if opts.smoke {
        (ms(100), ms(150))
    } else {
        (ms(150), ms(250))
    };
    println!("\n[2/2] SYN flood: {FLOOD_MULTIPLE}x saturation, cookies + reaping on");

    let mut configs = Vec::new();
    for &listen in &ListenKind::ALL {
        let rate = FLOOD_MULTIPLE * bench::rate_guess(listen, ServerKind::apache(), cores);
        let mut cfg = bench::base_config(Machine::amd48(), cores, listen, ServerKind::apache());
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.conn_rate = rate;
        cfg.seed = 13;
        cfg.overload.syn_cookies = true;
        // A short TTL so the reaper demonstrably fires inside the window.
        cfg.overload.reap = Some(ReapPolicy {
            ttl: ms(10),
            synack_retries: 2,
        });
        configs.push(cfg);
    }
    let results = bench::sweep_map(configs.clone(), bench::default_workers(), |cfg| {
        Runner::new(cfg).run()
    });

    let mut t = metrics::table::Table::new(&[
        "kind",
        "served",
        "cookies",
        "validated",
        "cookie_est",
        "reaped",
        "overflow",
        "gate",
    ]);
    let mut rows = Vec::new();
    let mut ok = true;
    for (cfg, r) in configs.iter().zip(&results) {
        let o = &r.overload;
        let mut problems: Vec<String> = r
            .audit
            .violations()
            .into_iter()
            .map(|v| format!("audit: {v}"))
            .collect();
        if r.served == 0 {
            problems.push("served nothing under flood".to_string());
        }
        if o.cookies_issued == 0 {
            problems.push("flood never pushed the kind into cookie mode".to_string());
        }
        t.row_owned(vec![
            cfg.listen.label().to_string(),
            r.served.to_string(),
            o.cookies_issued.to_string(),
            o.cookies_validated.to_string(),
            o.cookies_established.to_string(),
            o.reaped.to_string(),
            r.listen_stats.dropped_overflow.to_string(),
            if problems.is_empty() { "ok" } else { "FAIL" }.to_string(),
        ]);
        for p in &problems {
            println!("  FLOOD [{:>8}] {p}", cfg.listen.label());
        }
        ok &= problems.is_empty();
        rows.push(
            Json::obj()
                .field("kind", cfg.listen.label())
                .field("conn_rate", cfg.conn_rate)
                .field("served", r.served)
                .field("cookies_issued", o.cookies_issued)
                .field("cookies_validated", o.cookies_validated)
                .field("cookies_established", o.cookies_established)
                .field("cookies_expired", o.cookies_expired)
                .field("cookie_drops", o.cookie_drops)
                .field("reaped", o.reaped)
                .field("synack_retrans", o.synack_retrans)
                .field("shed_on", o.shed_on)
                .field("shed_off", o.shed_off)
                .field("dropped_overflow", r.listen_stats.dropped_overflow)
                .field(
                    "problems",
                    Json::Arr(problems.iter().map(|p| Json::Str(p.clone())).collect()),
                )
                .field("ok", problems.is_empty()),
        );
    }
    print!("{}", t.render());
    println!(
        "  SYN-flood gates: {}",
        if ok { "hold" } else { "VIOLATED" }
    );

    let json = Json::obj()
        .field("cores", cores)
        .field("rate_multiple", FLOOD_MULTIPLE)
        .field("kinds", Json::Arr(rows))
        .field("ok", ok);
    PassReport { ok, json }
}
