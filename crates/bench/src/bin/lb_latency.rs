//! §6.5, first experiment: client-perceived connection latency when half
//! the cores suddenly lose capacity to a parallel `make`, with and
//! without the connection load balancer.
//!
//! The web server is offered ~50 % of machine capacity; a kernel-compile
//! batch job occupies the upper 24 cores. Expected shape: without
//! stealing, connections landing on make cores time out (median latency
//! jumps to the client timeout); with the load balancer the median
//! returns to ~230 ms (the two 100 ms think times plus service under
//! full utilization of the remaining cores).
//!
//! The client timeout is scaled from the paper's 10 s to 2.5 s to keep
//! the simulation window tractable; the effect (median = timeout without
//! balancing) is unchanged.

use app::{ListenKind, RunConfig, Runner, ServerKind, Workload};
use metrics::table::Table;
use sim::time::{ms, secs, to_ms};
use sim::topology::Machine;

fn config(hog: bool, stealing: bool, migration: bool) -> RunConfig {
    let mut wl = Workload::base();
    wl.timeout = ms(2_500);
    // ~50% of the measured Affinity capacity at 48 cores.
    let rate = 0.5 * 10_300.0 * 48.0 / 6.0;
    let mut cfg = RunConfig::new(
        Machine::amd48(),
        48,
        ListenKind::Affinity,
        ServerKind::lighttpd(),
        wl,
        rate,
    );
    cfg.app_cycles = cfg.server.app_cycles();
    cfg.warmup = ms(800);
    cfg.measure = secs(3);
    cfg.hog_work = hog.then_some(secs(40)); // still running at window end
    cfg.steal_enabled = stealing;
    cfg.migrate_enabled = migration;
    cfg
}

fn main() {
    bench::header(
        "lb_latency",
        "connection latency under a background make on half the cores (§6.5)",
    );
    let cases = [
        ("web server alone", config(false, true, true)),
        ("make, no balancer", config(true, false, false)),
        ("make, stealing only", config(true, true, false)),
        ("make, full balancer", config(true, true, true)),
    ];
    let mut t = Table::new(&[
        "configuration",
        "median (ms)",
        "90th pct (ms)",
        "timeouts",
        "completed",
        "stolen",
        "migrations",
    ]);
    for (name, cfg) in cases {
        let r = Runner::new(cfg).run();
        t.row_owned(vec![
            name.into(),
            format!("{:.0}", to_ms(r.latency.median())),
            format!("{:.0}", to_ms(r.latency.percentile(90.0))),
            r.timeouts.to_string(),
            r.conns_completed.to_string(),
            r.listen_stats.accepts_stolen.to_string(),
            r.migrations.to_string(),
        ]);
        eprintln!("# lb_latency: {name} done");
    }
    print!("{}", t.render());
    println!("\npaper (§6.5): alone 200ms median/90th; make without balancer");
    println!("  10s median+90th (timeouts); with balancer 230ms median, 480ms 90th");
}
