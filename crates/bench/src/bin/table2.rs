//! Table 2: composition of the time to process a single request with
//! Apache at 48 cores, measured under the `lock_stat` profiler.
//!
//! Columns mirror the paper: throughput (depressed by lock_stat's
//! accounting overhead), total per-request time across all cores, idle
//! time (which includes mutex-mode waits for the listen-socket lock),
//! spin-mode wait, hold time, and the remainder.
//!
//! Expected shape: Stock spends most of each request waiting for the
//! listen-socket lock (~70 % idle+wait); Fine and Affinity have
//! negligible listen-lock time, with Affinity ahead on throughput.

use app::ServerKind;
use bench::{base_config, sweep_saturation, IMPLS};
use metrics::lockstat::LockClass;
use metrics::table::{fnum, Table};
use sim::time::to_us;
use sim::topology::Machine;

fn main() {
    bench::header(
        "table2",
        "per-request time breakdown under lock_stat (Apache, AMD, 48 cores)",
    );
    let cfgs = IMPLS
        .iter()
        .map(|l| {
            let mut c = base_config(Machine::amd48(), 48, *l, ServerKind::apache());
            c.lockstat = true;
            c
        })
        .collect();
    let rs = sweep_saturation(cfgs);

    let mut t = Table::new(&[
        "listen socket",
        "req/s/core",
        "total (us)",
        "idle (us)",
        "lock wait spin (us)",
        "lock hold (us)",
        "other (us)",
    ]);
    for (l, r) in IMPLS.iter().zip(&rs) {
        let served = r.served.max(1) as f64;
        // Total wall-clock across all cores, per request.
        let total_cyc = 48.0 * sim::time::ms(300) as f64 / served;
        let idle_cyc = r.idle_frac * total_cyc;
        // Listen-socket lock accounting. Mutex-mode waits already show up
        // as idle time (the task sleeps); spin waits burn CPU.
        let ls = r.lockstat.class(LockClass::ListenSocket);
        let spin_cyc = ls.wait_spin_cycles as f64 / served;
        let hold_cyc = ls.hold_cycles as f64 / served;
        let other_cyc = (total_cyc - idle_cyc - spin_cyc - hold_cyc).max(0.0);
        t.row_owned(vec![
            l.label().into(),
            format!("{:.0}", r.rps_per_core),
            fnum(to_us(total_cyc as u64), 0),
            fnum(to_us(idle_cyc as u64), 0),
            fnum(to_us(spin_cyc as u64), 1),
            fnum(to_us(hold_cyc as u64), 1),
            fnum(to_us(other_cyc as u64), 0),
        ]);
    }
    print!("{}", t.render());
    println!();
    for (l, r) in IMPLS.iter().zip(&rs) {
        let ls = r.lockstat.class(LockClass::ListenSocket);
        println!(
            "# {}: listen lock acquisitions {}, contended {}, mutex-mode wait {:.0} us/req",
            l.label(),
            ls.acquisitions,
            ls.contended,
            to_us(ls.wait_mutex_cycles / r.served.max(1)),
        );
    }
    println!("\npaper (Table 2): stock 1700 req/s/core, 590us total, 320us idle,");
    println!("  82us spin, 25us hold; fine 5700, 178us, 8us, 0, 30us;");
    println!("  affinity 7000, 144us, 4us, 0, 17us");
}
