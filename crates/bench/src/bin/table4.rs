//! Table 4: DProf data-structure sharing profile, Fine-Accept vs
//! Affinity-Accept (Apache, AMD, 48 cores).
//!
//! For each tracked kernel data type: percent of its cache lines shared
//! between cores, percent of bytes shared, percent shared read-write, and
//! cycles per request spent accessing the instrumented (shared-under-Fine)
//! bytes.
//!
//! Expected shape: connection-path objects (`tcp_sock`, `sk_buff`,
//! `tcp_request_sock`, small slabs) heavily shared under Fine and almost
//! private under Affinity; `file` objects equally shared under both
//! (global reference counts).

use app::{ListenKind, ServerKind};
use bench::{base_config, sweep_saturation};
use mem::DataType;
use metrics::table::{kfmt, Table};
use sim::topology::Machine;

fn main() {
    bench::header(
        "table4",
        "DProf sharing profile per data type, Fine / Affinity (48 cores)",
    );
    let impls = [ListenKind::Fine, ListenKind::Affinity];
    let cfgs = impls
        .iter()
        .map(|l| {
            let mut c = base_config(Machine::amd48(), 48, *l, ServerKind::apache());
            c.dprof = true;
            c
        })
        .collect();
    let rs = sweep_saturation(cfgs);
    let (fine, aff) = (&rs[0], &rs[1]);

    let mut t = Table::new(&[
        "data type",
        "size (B)",
        "% lines shared (F/A)",
        "% bytes shared (F/A)",
        "% bytes RW (F/A)",
        "cyc on shared/req (F/A)",
    ]);
    for ty in DataType::TABLE4 {
        let fr = fine.kernel.cache.dprof.table4_row(ty, fine.served);
        let ar = aff.kernel.cache.dprof.table4_row(ty, aff.served);
        t.row_owned(vec![
            ty.label().into(),
            ty.size().to_string(),
            format!("{:.0} / {:.0}", fr.lines_shared_pct, ar.lines_shared_pct),
            format!("{:.0} / {:.0}", fr.bytes_shared_pct, ar.bytes_shared_pct),
            format!(
                "{:.0} / {:.0}",
                fr.bytes_shared_rw_pct, ar.bytes_shared_rw_pct
            ),
            format!(
                "{} / {}",
                kfmt(fr.cycles_per_request),
                kfmt(ar.cycles_per_request)
            ),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper (Table 4, fine/affinity): tcp_sock 85/12 lines, 30/2 bytes,");
    println!("  22/2 RW, 54974/30584 cyc; sk_buff 75/25, 20/2, 17/2, 17586/9882;");
    println!("  tcp_request_sock 100/0, 22/0, 12/0, 5174/3278; file 100/100, 8/8, 8/8");
}
