//! §6.5, second experiment: flow-group migration returns CPU to a
//! co-located batch job.
//!
//! The paper: a kernel compile on 24 of the 48 cores takes 125 s alone;
//! adding the web server (stealing on, migration off) stretches it to
//! 168 s; enabling flow-group migration recovers it to 130 s, because
//! packet processing for the web server's flow groups moves off the make
//! cores (twice — the compile's serial phase lets groups drift back).
//!
//! The job is scaled down ~100× so the simulation completes quickly;
//! compare the runtime *ratios*.

use app::Runner;
use metrics::table::Table;
use sim::time::to_ms;

fn main() {
    bench::header(
        "lb_migration",
        "batch-job runtime with and without flow-group migration (§6.5)",
    );
    // The full (config, seed) set is pinned in `bench::lb` so the
    // recorded table in EXPERIMENTS.md regenerates exactly.
    let cases = bench::lb::lb_migration_cases();
    let mut runtimes = Vec::new();
    let mut t = Table::new(&[
        "configuration",
        "make runtime (ms)",
        "vs alone",
        "migrations",
    ]);
    let mut base = None;
    for (name, cfg) in cases {
        let r = Runner::new(cfg).run();
        let rt = r.batch_runtime.expect("job ran");
        if base.is_none() {
            base = Some(rt as f64);
        }
        runtimes.push(rt);
        t.row_owned(vec![
            name.into(),
            format!("{:.0}", to_ms(rt)),
            format!("{:.2}x", rt as f64 / base.unwrap()),
            r.migrations.to_string(),
        ]);
        eprintln!("# lb_migration: {name} done (runtime {:.0} ms)", to_ms(rt));
    }
    print!("{}", t.render());
    println!("\npaper (§6.5): 125s alone -> 168s with web (1.34x) -> 130s with");
    println!("  migration (1.04x); shapes, not absolute times, are comparable");
}
