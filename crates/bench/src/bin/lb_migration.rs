//! §6.5, second experiment: flow-group migration returns CPU to a
//! co-located batch job.
//!
//! The paper: a kernel compile on 24 of the 48 cores takes 125 s alone;
//! adding the web server (stealing on, migration off) stretches it to
//! 168 s; enabling flow-group migration recovers it to 130 s, because
//! packet processing for the web server's flow groups moves off the make
//! cores (twice — the compile's serial phase lets groups drift back).
//!
//! The job is scaled down ~100× so the simulation completes quickly;
//! compare the runtime *ratios*.

use app::{ListenKind, RunConfig, Runner, ServerKind, Workload};
use metrics::table::Table;
use sim::time::{ms, secs, to_ms};
use sim::topology::Machine;

/// Undisturbed wall-clock target for the make job: the paper's 125 s
/// scaled down 100×.
fn make_work() -> u64 {
    secs(5) / 4
}

fn config(web: bool, migration: bool) -> RunConfig {
    let mut wl = Workload::base();
    wl.timeout = ms(2_500);
    let rate = if web {
        0.5 * 10_300.0 * 48.0 / 6.0
    } else {
        1.0
    };
    let mut cfg = RunConfig::new(
        Machine::amd48(),
        48,
        ListenKind::Affinity,
        ServerKind::lighttpd(),
        wl,
        rate,
    );
    cfg.app_cycles = cfg.server.app_cycles();
    cfg.warmup = ms(600);
    cfg.measure = ms(400);
    cfg.hog_work = Some(make_work());
    cfg.steal_enabled = true;
    cfg.migrate_enabled = migration;
    // The job is time-compressed 100x; scale the 100 ms migration cadence
    // with it so the balancer moves the same share of flow groups per
    // job-second as in the paper.
    cfg.migrate_interval = ms(2);
    cfg
}

fn main() {
    bench::header(
        "lb_migration",
        "batch-job runtime with and without flow-group migration (§6.5)",
    );
    let cases = [
        ("make alone", config(false, true)),
        ("make + web, no migration", config(true, false)),
        ("make + web, migration", config(true, true)),
    ];
    let mut runtimes = Vec::new();
    let mut t = Table::new(&[
        "configuration",
        "make runtime (ms)",
        "vs alone",
        "migrations",
    ]);
    let mut base = None;
    for (name, cfg) in cases {
        let r = Runner::new(cfg).run();
        let rt = r.batch_runtime.expect("job ran");
        if base.is_none() {
            base = Some(rt as f64);
        }
        runtimes.push(rt);
        t.row_owned(vec![
            name.into(),
            format!("{:.0}", to_ms(rt)),
            format!("{:.2}x", rt as f64 / base.unwrap()),
            r.migrations.to_string(),
        ]);
        eprintln!("# lb_migration: {name} done (runtime {:.0} ms)", to_ms(rt));
    }
    print!("{}", t.render());
    println!("\npaper (§6.5): 125s alone -> 168s with web (1.34x) -> 130s with");
    println!("  migration (1.04x); shapes, not absolute times, are comparable");
}
