//! Figure 6: lighttpd throughput per core vs. cores on the 80-core Intel
//! machine.
//!
//! Since the scenario catalog landed this binary is a thin wrapper over
//! `scenarios/fig6.json`: the sweep's machine, core counts, kinds,
//! windows and search mode all come from the scenario file, and
//! `tests/scenarios.rs` proves the derived configs are bit-identical to
//! the `bench::base_config` ones this binary used to build by hand.

use bench::scenario::{catalog_path, load_file};
use bench::{sweep_saturation, throughput_series};

fn main() {
    let sc = load_file(&catalog_path("scenarios/fig6.json")).expect("load fig6 scenario");
    bench::header(
        "fig6",
        "lighttpd, Intel machine: requests/sec/core vs cores",
    );
    let xs = sc.cores_list();
    for &listen in &sc.kinds {
        let cfgs = xs.iter().map(|&c| sc.config(listen, c, 1.0)).collect();
        let rs = sweep_saturation(cfgs);
        println!();
        print!("{}", throughput_series(listen.label(), &xs, &rs));
        if let Some(last) = rs.last() {
            println!(
                "# {} at 80 cores: wire utilization {:.0}%",
                listen.label(),
                last.wire_util * 100.0
            );
        }
    }
}
