//! Figure 6: lighttpd throughput per core vs. cores on the 80-core Intel
//! machine.

use app::ServerKind;
use bench::{base_config, intel_core_counts, sweep_saturation, throughput_series, IMPLS};
use sim::topology::Machine;

fn main() {
    bench::header(
        "fig6",
        "lighttpd, Intel machine: requests/sec/core vs cores",
    );
    let xs = intel_core_counts();
    for listen in IMPLS {
        let cfgs = xs
            .iter()
            .map(|c| base_config(Machine::intel80(), *c, listen, ServerKind::lighttpd()))
            .collect();
        let rs = sweep_saturation(cfgs);
        println!();
        print!("{}", throughput_series(listen.label(), &xs, &rs));
        if let Some(last) = rs.last() {
            println!(
                "# {} at 80 cores: wire utilization {:.0}%",
                listen.label(),
                last.wire_util * 100.0
            );
        }
    }
}
