//! `simcheck` — the determinism and conservation audit harness.
//!
//! Three passes, each exercising a different reliability property of the
//! simulator:
//!
//! 1. **Replay**: every sampled `(machine, listen, server, rate, seed)`
//!    configuration is run twice; the two runs must produce bit-identical
//!    event-stream fingerprints and equal counters.
//! 2. **Sweep stability**: a config batch is pushed through
//!    [`bench::sweep_fixed_workers`] at 1, 2, and N worker threads; the
//!    result order and every value must not depend on the worker count.
//! 3. **Fuzz**: randomized configurations run with conservation audits
//!    enabled, then re-run on the sharded parallel event queue (2 worker
//!    threads) — the parallel run must match the serial one bit-for-bit.
//!    Any violation, divergence, or panic is shrunk to a minimal failing
//!    [`app::RunConfig`] and printed as a ready-to-paste regression test.
//!
//! Writes a machine-readable report to `results/simcheck.json` and exits
//! nonzero on any divergence or violation.
//!
//! Usage: `simcheck [--runs N] [--fuzz N] [--seed S] [--out PATH]`

use app::{ListenKind, RunConfig, RunResult, Runner, ServerKind, Workload};
use metrics::json::Json;
use sim::rng::SimRng;
use sim::time::ms;
use sim::topology::Machine;

fn main() {
    let opts = Opts::parse();
    bench::header("simcheck", "determinism fingerprints + conservation audits");
    println!(
        "replay configs: {}   fuzz cases: {}   base seed: {}",
        opts.runs, opts.fuzz, opts.seed
    );

    let replay = replay_pass(&opts);
    let sweep = sweep_pass();
    let fuzz = fuzz_pass(&opts);

    let ok = replay.divergences.is_empty() && sweep.stable && fuzz.failures.is_empty();
    let report = Json::obj()
        .field("runs", opts.runs)
        .field("fuzz_cases", opts.fuzz)
        .field("base_seed", opts.seed)
        .field("replay", replay.to_json())
        .field("sweep", sweep.to_json())
        .field("fuzz", fuzz.to_json())
        .field("ok", ok);
    if let Some(parent) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&opts.out, report.render() + "\n").expect("write report");
    println!("report: {}", opts.out);

    if ok {
        println!(
            "simcheck: OK ({} replays, {} fuzz cases, sweep stable)",
            opts.runs, opts.fuzz
        );
    } else {
        println!(
            "simcheck: FAILED ({} replay divergences, sweep stable: {}, {} fuzz failures)",
            replay.divergences.len(),
            sweep.stable,
            fuzz.failures.len()
        );
        std::process::exit(1);
    }
}

struct Opts {
    runs: usize,
    fuzz: usize,
    seed: u64,
    out: String,
}

impl Opts {
    fn parse() -> Self {
        let mut opts = Opts {
            runs: 64,
            fuzz: 0,
            seed: 0xC0FFEE,
            out: "results/simcheck.json".to_string(),
        };
        let mut fuzz_set = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match a.as_str() {
                "--runs" => opts.runs = value("--runs").parse().expect("--runs N"),
                "--fuzz" => {
                    opts.fuzz = value("--fuzz").parse().expect("--fuzz N");
                    fuzz_set = true;
                }
                "--seed" => opts.seed = value("--seed").parse().expect("--seed S"),
                "--out" => opts.out = value("--out"),
                "--check" => {} // audits are always on here
                other => panic!("unknown argument {other} (usage: simcheck [--runs N] [--fuzz N] [--seed S] [--out PATH])"),
            }
        }
        if !fuzz_set {
            // Default fuzz effort scales with the replay sample: `--runs 64`
            // fuzzes a few hundred combos, the CI smoke run stays quick.
            opts.fuzz = opts.runs * 4;
        }
        opts
    }
}

/// A short run: small core counts and windows keep one run in the
/// tens-of-milliseconds range so hundreds fit in a CI smoke test.
fn quick_config(
    machine: Machine,
    cores: usize,
    listen: ListenKind,
    server: ServerKind,
    rate: f64,
    seed: u64,
) -> RunConfig {
    let mut cfg = RunConfig::new(machine, cores, listen, server, Workload::base(), rate);
    cfg.warmup = ms(150);
    cfg.measure = ms(150);
    cfg.tracked_files = 200;
    cfg.seed = seed;
    cfg
}

fn label(cfg: &RunConfig) -> String {
    format!(
        "{} {} {} cores={} rate={:.0} seed={}",
        cfg.machine.name,
        cfg.listen.label(),
        cfg.server.label(),
        cfg.cores,
        cfg.conn_rate,
        cfg.seed
    )
}

/// The deterministic config sample the replay pass walks: the cross
/// product of machines, listen kinds, servers, and load levels, each at a
/// distinct seed.
fn sample_configs(n: usize, base_seed: u64) -> Vec<RunConfig> {
    let machines = [Machine::amd48(), Machine::intel80()];
    let listens = [ListenKind::Stock, ListenKind::Fine, ListenKind::Affinity];
    let servers = [ServerKind::apache(), ServerKind::lighttpd()];
    // Per-core offered rates from idle to overload.
    let rates_per_core = [500.0, 2_000.0, 8_000.0];
    let cores = [1usize, 2, 4, 8];
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    'outer: loop {
        for &rate_pc in &rates_per_core {
            for &listen in &listens {
                for machine in &machines {
                    for &server in &servers {
                        for &c in &cores {
                            if out.len() >= n {
                                break 'outer;
                            }
                            out.push(quick_config(
                                machine.clone(),
                                c,
                                listen,
                                server,
                                rate_pc * c as f64,
                                base_seed.wrapping_add(i),
                            ));
                            i += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- replay

struct ReplayReport {
    configs: usize,
    divergences: Vec<String>,
}

impl ReplayReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("configs", self.configs)
            .field(
                "divergences",
                Json::Arr(
                    self.divergences
                        .iter()
                        .map(|d| Json::Str(d.clone()))
                        .collect(),
                ),
            )
            .field("ok", self.divergences.is_empty())
    }
}

fn replay_pass(opts: &Opts) -> ReplayReport {
    println!("\n[1/3] replay: {} configs x 2 runs", opts.runs);
    let configs = sample_configs(opts.runs, opts.seed);
    // Interleave the two copies A1 B1 ... A2 B2 ... so the two runs of a
    // config land on different worker threads.
    let mut jobs = configs.clone();
    jobs.extend(configs.iter().cloned());
    let results = bench::sweep_fixed_workers(jobs, bench::default_workers());
    let (first, second) = results.split_at(opts.runs);
    let mut divergences = Vec::new();
    for ((cfg, a), b) in configs.iter().zip(first).zip(second) {
        if let Some(why) = diverges(a, b) {
            divergences.push(format!("[{}] {}", label(cfg), why));
        }
        for v in a.audit.violations() {
            divergences.push(format!("[{}] audit: {}", label(cfg), v));
        }
    }
    for d in &divergences {
        println!("  DIVERGED {d}");
    }
    println!(
        "  {} configs replayed, {} divergences",
        opts.runs,
        divergences.len()
    );
    ReplayReport {
        configs: opts.runs,
        divergences,
    }
}

fn diverges(a: &RunResult, b: &RunResult) -> Option<String> {
    if a.fingerprint != b.fingerprint {
        return Some(format!(
            "fingerprint {:#018x} != {:#018x}",
            a.fingerprint, b.fingerprint
        ));
    }
    let pairs = [
        ("served", a.served, b.served),
        ("drops_overflow", a.drops_overflow, b.drops_overflow),
        ("drops_nic", a.drops_nic, b.drops_nic),
        ("timeouts", a.timeouts, b.timeouts),
        ("migrations", a.migrations, b.migrations),
        ("conns_completed", a.conns_completed, b.conns_completed),
    ];
    for (name, x, y) in pairs {
        if x != y {
            return Some(format!("{name} {x} != {y}"));
        }
    }
    if a.audit != b.audit {
        return Some("audit counters differ".to_string());
    }
    None
}

// ----------------------------------------------------------------- sweep

struct SweepReport {
    configs: usize,
    worker_counts: Vec<usize>,
    stable: bool,
    mismatches: Vec<String>,
}

impl SweepReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("configs", self.configs)
            .field(
                "worker_counts",
                Json::Arr(
                    self.worker_counts
                        .iter()
                        .map(|w| Json::U64(*w as u64))
                        .collect(),
                ),
            )
            .field(
                "mismatches",
                Json::Arr(
                    self.mismatches
                        .iter()
                        .map(|m| Json::Str(m.clone()))
                        .collect(),
                ),
            )
            .field("ok", self.stable)
    }
}

fn sweep_pass() -> SweepReport {
    let worker_counts = {
        let mut w = vec![1, 2, bench::default_workers()];
        w.sort_unstable();
        w.dedup();
        w
    };
    println!("\n[2/3] sweep stability: workers {worker_counts:?}");
    // One config per (listen, load) corner; seeds offset so the batch is
    // heterogeneous.
    let configs: Vec<RunConfig> = [
        (ListenKind::Stock, 2, 1_000.0),
        (ListenKind::Stock, 4, 30_000.0),
        (ListenKind::Fine, 2, 1_000.0),
        (ListenKind::Fine, 4, 30_000.0),
        (ListenKind::Affinity, 2, 1_000.0),
        (ListenKind::Affinity, 4, 30_000.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(listen, cores, rate))| {
        quick_config(
            Machine::amd48(),
            cores,
            listen,
            ServerKind::apache(),
            rate,
            1000 + i as u64,
        )
    })
    .collect();

    let baseline = bench::sweep_fixed_workers(configs.clone(), worker_counts[0]);
    let mut mismatches = Vec::new();
    for &w in &worker_counts[1..] {
        let rs = bench::sweep_fixed_workers(configs.clone(), w);
        for ((cfg, a), b) in configs.iter().zip(&baseline).zip(&rs) {
            if let Some(why) = diverges(a, b) {
                mismatches.push(format!("[{} @ {w} workers] {}", label(cfg), why));
            }
        }
    }
    for m in &mismatches {
        println!("  UNSTABLE {m}");
    }
    let stable = mismatches.is_empty();
    println!(
        "  {} configs x {:?} workers: {}",
        configs.len(),
        worker_counts,
        if stable { "stable" } else { "UNSTABLE" }
    );
    SweepReport {
        configs: configs.len(),
        worker_counts,
        stable,
        mismatches,
    }
}

// ------------------------------------------------------------------ fuzz

struct FuzzFailure {
    label: String,
    problems: Vec<String>,
    repro: String,
}

struct FuzzReport {
    cases: usize,
    failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("cases", self.cases)
            .field(
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj()
                                .field("config", f.label.clone())
                                .field(
                                    "problems",
                                    Json::Arr(
                                        f.problems.iter().map(|p| Json::Str(p.clone())).collect(),
                                    ),
                                )
                                .field("repro", f.repro.clone())
                        })
                        .collect(),
                ),
            )
            .field("ok", self.failures.is_empty())
    }
}

/// Draws one randomized configuration. Dimensions mirror what the figure
/// binaries sweep, plus the perturbing knobs (lockstat, batch job,
/// stealing/migration toggles).
fn random_config(rng: &mut SimRng) -> RunConfig {
    let machine = if rng.chance(0.5) {
        Machine::amd48()
    } else {
        Machine::intel80()
    };
    let listen = match rng.below(3) {
        0 => ListenKind::Stock,
        1 => ListenKind::Fine,
        _ => ListenKind::Affinity,
    };
    let server = if rng.chance(0.5) {
        ServerKind::apache()
    } else {
        ServerKind::lighttpd()
    };
    let cores = [1usize, 2, 3, 4, 6, 8][rng.index(6)];
    let rate_per_core = [200.0, 1_000.0, 4_000.0, 12_000.0][rng.index(4)];
    let mut cfg = quick_config(
        machine,
        cores,
        listen,
        server,
        rate_per_core * cores as f64,
        rng.next_u64(),
    );
    cfg.workload = match rng.below(3) {
        0 => Workload::base(),
        1 => Workload::with_requests_per_conn([1, 2, 6, 24][rng.index(4)]),
        _ => Workload::with_think(ms(rng.range(0, 120))),
    };
    cfg.lockstat = rng.chance(0.15);
    cfg.steal_enabled = rng.chance(0.8);
    cfg.migrate_enabled = rng.chance(0.8);
    if rng.chance(0.15) && cores >= 2 {
        cfg.hog_work = Some(ms(rng.range(20, 150)));
    }
    cfg
}

/// Runs one config with audits enabled, then re-runs it on the sharded
/// parallel backend; returns the problem list (audit violations, a
/// parallel-vs-serial divergence, or the panic message if a runner
/// panicked).
fn problems_of(cfg: &RunConfig) -> Vec<String> {
    let run = |cfg: RunConfig| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || Runner::new(cfg).run()))
            .map_err(|payload| {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic".to_string())
            })
    };
    let serial = match run(cfg.clone()) {
        Ok(r) => r,
        Err(msg) => return vec![format!("panic: {msg}")],
    };
    let mut problems = serial.audit.violations();
    let mut pcfg = cfg.clone();
    pcfg.evq = sim::events::Backend::Sharded {
        shards: cfg.cores as u16,
        threads: 2,
    };
    match run(pcfg) {
        Ok(parallel) => {
            if let Some(why) = diverges(&serial, &parallel) {
                problems.push(format!("parallel (2 threads) diverged from serial: {why}"));
            }
        }
        Err(msg) => problems.push(format!("parallel (2 threads) panic: {msg}")),
    }
    problems
}

fn fuzz_pass(opts: &Opts) -> FuzzReport {
    println!(
        "\n[3/3] fuzz: {} randomized configs, audits enforced",
        opts.fuzz
    );
    let mut rng = SimRng::new(opts.seed ^ 0x0F75_5A5A_F0F0_1234);
    let configs: Vec<RunConfig> = (0..opts.fuzz).map(|_| random_config(&mut rng)).collect();

    // Parallel first pass; shrinking (rare) is sequential.
    let jobs = configs.clone();
    let results = bench::sweep_map(jobs, bench::default_workers(), |cfg| problems_of(&cfg));
    let mut failures = Vec::new();
    for (cfg, problems) in configs.iter().zip(results) {
        if problems.is_empty() {
            continue;
        }
        println!("  FUZZ FAILURE [{}]:", label(cfg));
        for p in &problems {
            println!("    {p}");
        }
        let minimal = shrink(cfg.clone());
        let repro = repro_test(&minimal, &problems);
        println!("  minimal repro:\n{repro}");
        failures.push(FuzzFailure {
            label: label(&minimal),
            problems,
            repro,
        });
    }
    println!("  {} cases, {} failures", opts.fuzz, failures.len());
    FuzzReport {
        cases: opts.fuzz,
        failures,
    }
}

/// Greedy shrink: repeatedly tries simplifying transformations and keeps
/// any that still fail, until a fixpoint.
fn shrink(mut cfg: RunConfig) -> RunConfig {
    let still_fails = |c: &RunConfig| !problems_of(c).is_empty();
    if !still_fails(&cfg) {
        // Flaky under replay — itself a determinism bug; report as-is.
        return cfg;
    }
    loop {
        let mut shrunk = false;
        let mut candidates: Vec<RunConfig> = Vec::new();
        if cfg.cores > 1 {
            let mut c = cfg.clone();
            c.cores /= 2;
            c.max_backlog = 128 * c.cores;
            candidates.push(c);
        }
        if cfg.conn_rate > 100.0 {
            let mut c = cfg.clone();
            c.conn_rate /= 2.0;
            candidates.push(c);
        }
        if cfg.hog_work.is_some() {
            let mut c = cfg.clone();
            c.hog_work = None;
            candidates.push(c);
        }
        if cfg.lockstat {
            let mut c = cfg.clone();
            c.lockstat = false;
            candidates.push(c);
        }
        if cfg.measure > ms(40) {
            let mut c = cfg.clone();
            c.measure /= 2;
            candidates.push(c);
        }
        if cfg.warmup > ms(40) {
            let mut c = cfg.clone();
            c.warmup /= 2;
            candidates.push(c);
        }
        for cand in candidates {
            if still_fails(&cand) {
                cfg = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return cfg;
        }
    }
}

/// Formats a minimal failing config as a ready-to-paste regression test.
fn repro_test(cfg: &RunConfig, problems: &[String]) -> String {
    let machine = if cfg.machine.name.contains("amd") || cfg.machine.n_cores == 48 {
        "Machine::amd48()"
    } else {
        "Machine::intel80()"
    };
    let listen = match cfg.listen {
        ListenKind::Stock => "ListenKind::Stock",
        ListenKind::Fine => "ListenKind::Fine",
        ListenKind::Affinity => "ListenKind::Affinity",
        ListenKind::Twenty => "ListenKind::Twenty",
        ListenKind::BusyPoll => "ListenKind::BusyPoll",
    };
    let server = if cfg.server.poll_based() {
        "ServerKind::lighttpd()"
    } else {
        "ServerKind::apache()"
    };
    let mut knobs = String::new();
    if cfg.lockstat {
        knobs.push_str("    cfg.lockstat = true;\n");
    }
    if !cfg.steal_enabled {
        knobs.push_str("    cfg.steal_enabled = false;\n");
    }
    if !cfg.migrate_enabled {
        knobs.push_str("    cfg.migrate_enabled = false;\n");
    }
    if let Some(w) = cfg.hog_work {
        knobs.push_str(&format!("    cfg.hog_work = Some({w});\n"));
    }
    format!(
        "\
#[test]
fn simcheck_repro() {{
    // simcheck found: {}
    let mut cfg = RunConfig::new(
        {machine},
        {},
        {listen},
        {server},
        Workload::base(),
        {:.1},
    );
    cfg.warmup = {};
    cfg.measure = {};
    cfg.seed = {};
    cfg.tracked_files = {};
{knobs}    let r = Runner::new(cfg).run();
    assert!(r.audit.is_ok(), \"{{:?}}\", r.audit.violations());
}}",
        problems.join("; "),
        cfg.cores,
        cfg.conn_rate,
        cfg.warmup,
        cfg.measure,
        cfg.seed,
        cfg.tracked_files,
    )
}
