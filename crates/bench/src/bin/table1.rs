//! Table 1: access times to different levels of the memory hierarchy.
//!
//! Prints the configured latency profiles and then *measures* them back
//! out of the coherence model by staging the corresponding access
//! patterns, verifying the model serves each level at the configured cost.

use mem::{CacheModel, DataType};
use metrics::table::Table;
use sim::topology::{CoreId, Machine};

/// Measures the six service levels by construction.
fn measure(machine: &Machine) -> [u64; 6] {
    let mut m = CacheModel::new(machine.clone());
    let local = CoreId(0);
    let same_chip = CoreId(1);
    let remote = CoreId((machine.cores_per_chip * (machine.n_chips() - 1)) as u16);

    // L1: immediate re-access.
    let o = m.alloc(DataType::TcpRequestSock, local);
    m.access_field(local, o, 0, true);
    let l1 = m.access_field(local, o, 0, false).latency;
    // L2: this core holds a copy but another core touched it last
    // (read-shared within the chip).
    m.access_field(same_chip, o, 0, false);
    let l2 = m.access_field(local, o, 0, false).latency;
    // L3: a same-chip core holds it modified.
    let o2 = m.alloc(DataType::TcpRequestSock, same_chip);
    m.access_field(same_chip, o2, 0, true);
    let l3 = m.access_field(local, o2, 0, false).latency;
    // RAM: first touch of a cold local object.
    let o3 = m.alloc(DataType::TcpRequestSock, local);
    let ram = m.access_field(local, o3, 0, false).latency;
    // Remote L3: a cross-chip core holds it modified.
    let o4 = m.alloc(DataType::TcpRequestSock, remote);
    m.access_field(remote, o4, 0, true);
    let rl3 = m.access_field(local, o4, 0, false).latency;
    // Remote RAM: cold object homed on the farthest chip (warm+evicted).
    let o5 = m.alloc(DataType::TcpRequestSock, remote);
    m.access_field(remote, o5, 0, true);
    m.access_field(remote, o5, 0, false);
    // Invalidate the remote copy by writing locally, then drop our copy by
    // writing remotely again, read from a third chip — clean remote home.
    let third = CoreId(machine.cores_per_chip as u16 * 2);
    m.access_field(third, o5, 0, false);
    let o6 = m.alloc(DataType::TcpRequestSock, remote);
    m.access_field(remote, o6, 0, true);
    m.access_field(third, o6, 0, false); // downgrade to shared
    let rram = m.access_field(local, o6, 0, false).latency;
    [l1, l2, l3, ram, rl3, rram]
}

fn main() {
    bench::header("table1", "memory hierarchy access times (cycles)");
    let mut t = Table::new(&[
        "machine",
        "L1",
        "L2",
        "L3",
        "RAM",
        "remote L3",
        "remote RAM",
    ]);
    for machine in [Machine::amd48(), Machine::intel80()] {
        let lat = machine.lat;
        t.row_owned(vec![
            format!("{} (configured)", machine.name),
            lat.l1.to_string(),
            lat.l2.to_string(),
            lat.l3.to_string(),
            lat.ram.to_string(),
            lat.remote_l3.to_string(),
            lat.remote_ram.to_string(),
        ]);
        let m = measure(&machine);
        t.row_owned(vec![
            format!("{} (measured)", machine.name),
            m[0].to_string(),
            m[1].to_string(),
            m[2].to_string(),
            m[3].to_string(),
            m[4].to_string(),
            m[5].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper (Table 1): AMD 3/14/28/120/460/500, Intel 4/12/24/90/200/280");
}
