//! Figure 10: Figure 7 plus "Twenty-Policy" — stock Linux with hardware
//! per-flow steering, the IXGBE driver's FDir update on every 20th
//! transmitted packet (§7.1).
//!
//! Expected shape: at low connection reuse Twenty-Policy tracks Stock
//! (short flows never reach 20 packets and the lock dominates anyway); at
//! moderate reuse FDir table maintenance (10k-cycle inserts, stall-the-
//! card flushes) holds it below Affinity; only at very high reuse does it
//! approach Affinity-Accept.

use app::{ListenKind, RunConfig, ServerKind, Workload};
use bench::IMPLS;
use metrics::table::Table;
use sim::topology::Machine;

/// Requests-per-connection values swept.
pub const REUSE: [u32; 6] = [1, 6, 20, 100, 500, 1000];

fn config_for(listen: ListenKind, n: u32, twenty: bool) -> RunConfig {
    let mut cfg = bench::base_config(Machine::amd48(), 48, listen, ServerKind::apache());
    cfg.workload = Workload::with_requests_per_conn(n);
    cfg.twenty_policy = twenty;
    let per_req = match listen {
        ListenKind::Stock | ListenKind::Twenty if twenty => 230_000.0 + 1_300_000.0 / f64::from(n),
        ListenKind::Stock | ListenKind::Twenty => 240_000.0 + 1_300_000.0 / f64::from(n),
        ListenKind::Fine => 210_000.0 + 380_000.0 / f64::from(n),
        ListenKind::Affinity | ListenKind::BusyPoll => 175_000.0 + 330_000.0 / f64::from(n),
    };
    let rps = 48.0 * 2.4e9 / per_req;
    cfg.conn_rate = rps / f64::from(n);
    cfg
}

fn main() {
    bench::header(
        "fig10",
        "connection reuse sweep incl. hardware flow steering (Twenty-Policy)",
    );
    let mut t = Table::new(&["req/conn", "stock", "fine", "affinity", "twenty-policy"]);
    for n in REUSE {
        let mut row = vec![n.to_string()];
        for listen in IMPLS {
            let r = app::find_saturation_budgeted(&config_for(listen, n, false), 3);
            row.push(format!("{:.0}", r.rps_per_core));
        }
        let r = app::find_saturation_budgeted(&config_for(ListenKind::Stock, n, true), 3);
        row.push(format!("{:.0}", r.rps_per_core));
        t.row_owned(row);
        eprintln!("# fig10: req/conn {n} done");
    }
    print!("{}", t.render());
    println!("\npaper (Figure 10): Twenty-Policy only matches Affinity near 1000");
    println!("  req/conn; table maintenance hurts at ~500; lock contention below 100");
}
