//! Figure 3: lighttpd throughput per core vs. active cores on the AMD
//! machine.
//!
//! Expected shape: same ordering as Figure 2; lighttpd's higher absolute
//! rate saturates the NIC at high core counts, so Affinity-Accept's curve
//! slopes downward past its peak.

use app::ServerKind;
use bench::{amd_core_counts, base_config, sweep_saturation, throughput_series, IMPLS};
use sim::topology::Machine;

fn main() {
    bench::header("fig3", "lighttpd, AMD machine: requests/sec/core vs cores");
    let xs = amd_core_counts();
    for listen in IMPLS {
        let cfgs = xs
            .iter()
            .map(|c| base_config(Machine::amd48(), *c, listen, ServerKind::lighttpd()))
            .collect();
        let rs = sweep_saturation(cfgs);
        println!();
        print!("{}", throughput_series(listen.label(), &xs, &rs));
        if let Some(last) = rs.last() {
            println!(
                "# {} at 48 cores: wire utilization {:.0}%",
                listen.label(),
                last.wire_util * 100.0
            );
        }
    }
}
