//! Table 3: performance counters by kernel entry point, Fine-Accept vs
//! Affinity-Accept (Apache, AMD machine, 48 cores).
//!
//! Expected shape: both implementations execute approximately the same
//! number of instructions; Fine incurs roughly double the L2 misses and
//! ~30–40 % more cycles in `softirq net rx`, with the summed network-stack
//! cycles about 1.3× Affinity's.

use app::{ListenKind, ServerKind};
use bench::{base_config, sweep_saturation};
use metrics::perf::KernelEntry;
use metrics::table::{kfmt, Table};
use sim::topology::Machine;

fn main() {
    bench::header(
        "table3",
        "perf counters per kernel entry, Fine vs Affinity (48 cores)",
    );
    let impls = [ListenKind::Fine, ListenKind::Affinity];
    let cfgs = impls
        .iter()
        .map(|l| {
            let mut c = base_config(Machine::amd48(), 48, *l, ServerKind::apache());
            c.dprof = true;
            c
        })
        .collect();
    let rs = sweep_saturation(cfgs);
    let (fine, aff) = (&rs[0], &rs[1]);

    let mut t = Table::new(&[
        "kernel entry",
        "cycles (F/A)",
        "cyc delta",
        "instr (F/A)",
        "instr delta",
        "l2 miss (F/A)",
        "miss delta",
    ]);
    for e in KernelEntry::ALL {
        let (fc, fi, fm) = fine.perf.per_request(e);
        let (ac, ai, am) = aff.perf.per_request(e);
        if fc == 0.0 && ac == 0.0 {
            continue;
        }
        t.row_owned(vec![
            e.label().into(),
            format!("{} / {}", kfmt(fc), kfmt(ac)),
            kfmt(fc - ac),
            format!("{} / {}", kfmt(fi), kfmt(ai)),
            format!("{:.0}", fi - ai),
            format!("{fm:.0} / {am:.0}"),
            format!("{:.0}", fm - am),
        ]);
    }
    print!("{}", t.render());
    let f_stack = fine.perf.network_stack_cycles_per_request();
    let a_stack = aff.perf.network_stack_cycles_per_request();
    println!();
    println!(
        "network-stack cycles/request: fine {} vs affinity {}  ({:.0}% reduction; paper: 30%)",
        kfmt(f_stack),
        kfmt(a_stack),
        100.0 * (f_stack - a_stack) / f_stack,
    );
    println!(
        "total L2 misses/request: fine {:.0} vs affinity {:.0} (paper: roughly 2x)",
        fine.perf.total_l2_misses() as f64 / fine.served.max(1) as f64,
        aff.perf.total_l2_misses() as f64 / aff.served.max(1) as f64,
    );
    println!(
        "throughput: fine {:.0} vs affinity {:.0} req/s/core ({:.0}% improvement; paper: 24%)",
        fine.rps_per_core,
        aff.rps_per_core,
        100.0 * (aff.rps - fine.rps) / fine.rps,
    );
}
