//! The sweep engine and the CLI/artifact scaffolding every harness
//! binary shares.
//!
//! Before the scenario catalog landed, each binary under `src/bin/`
//! hand-rolled the same three things: a worker pool that runs a list of
//! [`RunConfig`]s in parallel while preserving input order, an
//! `std::env::args` loop for its flags, and the `create_dir_all` +
//! `fs::write` + "report:" dance for its JSON artifact. This module is
//! the single home for all three; `fig6` is a thin wrapper over the
//! scenario driver and `chaos`/`recovery`/`scenario` parse their flags
//! through [`Args`] and emit their artifacts through [`write_artifact`].

use app::{ListenKind, RunConfig, RunResult, ServerKind, Workload};
use metrics::json::Json;
use sim::time::ms;
use sim::topology::Machine;

/// Runs `configs` through the saturation search in parallel (one OS
/// thread per hardware thread), preserving input order in the output.
#[must_use]
pub fn sweep_saturation(configs: Vec<RunConfig>) -> Vec<RunResult> {
    sweep_map(configs, default_workers(), |cfg| app::find_saturation(&cfg))
}

/// Runs `configs` directly (no rate search) in parallel.
#[must_use]
pub fn sweep_fixed(configs: Vec<RunConfig>) -> Vec<RunResult> {
    sweep_fixed_workers(configs, default_workers())
}

/// [`sweep_fixed`] with an explicit worker-thread count. Results are
/// returned in input order and must not depend on `workers` — `simcheck`
/// audits exactly that property at worker counts 1/2/N.
#[must_use]
pub fn sweep_fixed_workers(configs: Vec<RunConfig>, workers: usize) -> Vec<RunResult> {
    sweep_map(configs, workers, checked_run)
}

/// Default sweep parallelism: one worker per hardware thread.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
}

/// Whether `--check` was passed to the current binary: every figure
/// binary then verifies the conservation audit of each run it performs,
/// aborting with the violation list on the first bad run.
#[must_use]
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Runs one config, enforcing its conservation audit in `--check` mode.
fn checked_run(cfg: RunConfig) -> RunResult {
    let check = check_mode();
    let label = check.then(|| {
        format!(
            "{} {} cores={} rate={} seed={}",
            cfg.listen.label(),
            cfg.server.label(),
            cfg.cores,
            cfg.conn_rate,
            cfg.seed
        )
    });
    let r = app::Runner::new(cfg).run();
    if let Some(label) = label {
        let violations = r.audit.violations();
        assert!(
            violations.is_empty(),
            "--check: conservation audit failed for [{label}]:\n  {}",
            violations.join("\n  ")
        );
    }
    r
}

/// Runs an arbitrary job over each config on a worker pool, preserving
/// input order in the output (the generic engine behind the sweeps;
/// `simcheck` uses it directly for its audit pass).
pub fn sweep_map<T, F>(configs: Vec<RunConfig>, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(RunConfig) -> T + Sync,
{
    par_map(configs, workers, f)
}

/// [`sweep_map`] over any `Send` item type — the `cluster` harness maps
/// whole cluster configs, not single-host ones, through the same pool.
pub fn par_map<C, T, F>(items: Vec<C>, workers: usize, f: F) -> Vec<T>
where
    C: Send,
    T: Send,
    F: Fn(C) -> T + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    // A shared work-list plus an mpsc channel: each worker claims the
    // next un-run config, runs it outside the lock, and sends the result
    // back tagged with its input index.
    let jobs: std::sync::Mutex<std::collections::VecDeque<(usize, C)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let jobs = &jobs;
            let f = &f;
            s.spawn(move || loop {
                let job = jobs.lock().expect("sweep queue poisoned").pop_front();
                let Some((i, cfg)) = job else { break };
                let r = f(cfg);
                tx.send((i, r)).expect("receiver alive");
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("all jobs ran")).collect()
    })
}

/// A short-window run config shared by the adversarial harnesses
/// (`chaos`, `scenario` smoke recipes): the paper's machine/workload
/// defaults with 150 ms warmup/measure windows and a small tracked-file
/// set, cheap enough to fuzz by the hundreds.
#[must_use]
pub fn quick_config(
    machine: Machine,
    cores: usize,
    listen: ListenKind,
    server: ServerKind,
    rate: f64,
    seed: u64,
) -> RunConfig {
    let mut cfg = RunConfig::new(machine, cores, listen, server, Workload::base(), rate);
    cfg.warmup = ms(150);
    cfg.measure = ms(150);
    cfg.tracked_files = 200;
    cfg.seed = seed;
    cfg
}

/// Writes a JSON artifact, creating parent directories, trailing the
/// document with a newline, and echoing the path — the uniform tail of
/// every report-writing binary.
pub fn write_artifact(path: &str, report: &Json) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, report.render() + "\n")
        .unwrap_or_else(|e| panic!("write report {path}: {e}"));
    println!("report: {path}");
}

/// A tiny declarative flag parser for the harness binaries: registered
/// flags and valued options are consumed from `std::env::args`, anything
/// unknown panics with the usage string (the behavior every binary
/// previously hand-rolled, now in one place).
pub struct Args {
    tokens: Vec<String>,
    usage: String,
    taken: Vec<bool>,
}

impl Args {
    /// Captures the process arguments (after the binary name).
    #[must_use]
    pub fn parse(usage: &str) -> Self {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let taken = vec![false; tokens.len()];
        Self {
            tokens,
            usage: usage.to_string(),
            taken,
        }
    }

    /// A test/driver entry point over an explicit token list.
    #[must_use]
    pub fn from_tokens(tokens: Vec<String>, usage: &str) -> Self {
        let taken = vec![false; tokens.len()];
        Self {
            tokens,
            usage: usage.to_string(),
            taken,
        }
    }

    /// Consumes a boolean flag; `true` if present.
    pub fn flag(&mut self, name: &str) -> bool {
        let mut found = false;
        for (i, t) in self.tokens.iter().enumerate() {
            if !self.taken[i] && t == name {
                self.taken[i] = true;
                found = true;
            }
        }
        found
    }

    /// Consumes a `--name value` option; panics if the value is missing.
    pub fn value(&mut self, name: &str) -> Option<String> {
        for i in 0..self.tokens.len() {
            if !self.taken[i] && self.tokens[i] == name {
                self.taken[i] = true;
                let v = self
                    .tokens
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{name} requires a value (usage: {})", self.usage));
                self.taken[i + 1] = true;
                return Some(v.clone());
            }
        }
        None
    }

    /// Consumes a repeatable `--name value` option, in argument order.
    pub fn values(&mut self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(v) = self.value(name) {
            out.push(v);
        }
        out
    }

    /// Like [`Args::value`] but parsed; panics with the usage string on a
    /// malformed value.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Option<T> {
        self.value(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                panic!("{name} got malformed value {v:?} (usage: {})", self.usage)
            })
        })
    }

    /// Panics on any argument no `flag`/`value` call consumed. The
    /// shared `--check` flag (honored inside the sweep engine) is always
    /// accepted.
    pub fn finish(mut self) {
        let _ = self.flag("--check");
        for (i, t) in self.tokens.iter().enumerate() {
            assert!(
                self.taken[i],
                "unknown argument {t} (usage: {})",
                self.usage
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_consume_flags_values_and_reject_strays() {
        let mut a = Args::from_tokens(
            ["--smoke", "--out", "x.json", "--cases", "7"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            "test",
        );
        assert!(a.flag("--smoke"));
        assert!(!a.flag("--smoke"), "flags are consumed");
        assert_eq!(a.value("--out").as_deref(), Some("x.json"));
        assert_eq!(a.parsed::<usize>("--cases"), Some(7));
        assert_eq!(a.value("--missing"), None);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn args_panic_on_unknown() {
        let a = Args::from_tokens(vec!["--bogus".to_string()], "test");
        a.finish();
    }

    #[test]
    fn repeatable_values_keep_order() {
        let mut a = Args::from_tokens(
            ["--file", "a", "--file", "b"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            "test",
        );
        assert_eq!(a.values("--file"), vec!["a".to_string(), "b".to_string()]);
        a.finish();
    }
}
