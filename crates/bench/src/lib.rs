//! The experiment harness.
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index); this library holds what they share: standard run
//! configurations, the parallel sweep executor and CLI scaffolding
//! ([`sweep`]), and the declarative scenario catalog ([`scenario`]) the
//! `scenario` driver binary and `tests/scenarios.rs` run.
//!
//! All binaries print plain-text tables via [`metrics::table`] so their
//! output can be diffed against EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use app::{ListenKind, RunConfig, RunResult, ServerKind, Workload};
use sim::time::ms;
use sim::topology::Machine;

pub mod lb;
pub mod scenario;
pub mod sweep;

pub use sweep::{
    check_mode, default_workers, par_map, quick_config, sweep_fixed, sweep_fixed_workers,
    sweep_map, sweep_saturation, write_artifact, Args,
};

/// The three listen-socket implementations every figure compares.
pub const IMPLS: [ListenKind; 3] = [ListenKind::Stock, ListenKind::Fine, ListenKind::Affinity];

/// Core counts swept on the AMD machine (Figures 2, 3).
#[must_use]
pub fn amd_core_counts() -> Vec<usize> {
    vec![1, 8, 16, 24, 32, 40, 48]
}

/// Core counts swept on the Intel machine (Figures 5, 6).
#[must_use]
pub fn intel_core_counts() -> Vec<usize> {
    vec![1, 16, 32, 48, 64, 80]
}

/// A calibrated initial guess for the saturating connection rate, so the
/// search converges in few runs.
#[must_use]
pub fn rate_guess(listen: ListenKind, server: ServerKind, cores: usize) -> f64 {
    let per_core_rps: f64 = match (listen, server.poll_based()) {
        // Twenty shares stock's single accept lock, so it saturates there.
        (ListenKind::Stock | ListenKind::Twenty, _) => (160_000.0 / cores as f64).min(12_500.0),
        (ListenKind::Fine, false) => 8_700.0,
        (ListenKind::Affinity | ListenKind::BusyPoll, false) => 9_800.0,
        (ListenKind::Fine, true) => 13_500.0,
        (ListenKind::Affinity | ListenKind::BusyPoll, true) => 15_500.0,
    };
    let rps = per_core_rps * cores as f64;
    // Cap near the wire's capacity for large responses.
    rps / 6.0
}

/// A baseline configuration for the given machine/implementation/server.
#[must_use]
pub fn base_config(
    machine: Machine,
    cores: usize,
    listen: ListenKind,
    server: ServerKind,
) -> RunConfig {
    // The initial rate guess scales with cores; the saturation search
    // ramps from here.
    let guess = rate_guess(listen, server, cores);
    let mut cfg = RunConfig::new(machine, cores, listen, server, Workload::base(), guess);
    cfg.warmup = ms(450);
    cfg.measure = ms(300);
    cfg
}

/// Formats a per-core throughput series as the figures print it.
#[must_use]
pub fn throughput_series(name: &str, xs: &[usize], results: &[RunResult]) -> String {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(results)
        .map(|(x, r)| (*x as f64, r.rps_per_core))
        .collect();
    metrics::table::series(name, "cores", "requests/sec/core", &pts)
}

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("  (Affinity-Accept reproduction; simulated hardware — compare");
    println!("   shapes and ratios with the paper, not absolute numbers)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        let cfgs: Vec<RunConfig> = [1usize, 2]
            .iter()
            .map(|c| {
                let mut cfg = base_config(
                    Machine::amd48(),
                    *c,
                    ListenKind::Affinity,
                    ServerKind::apache(),
                );
                cfg.warmup = ms(30);
                cfg.measure = ms(60);
                cfg.conn_rate = 500.0;
                cfg.tracked_files = 50;
                cfg
            })
            .collect();
        let rs = sweep_fixed(cfgs);
        assert_eq!(rs.len(), 2);
        // Both served roughly the same offered load; per-core differs ~2x.
        assert!(rs[0].served > 0 && rs[1].served > 0);
    }

    #[test]
    fn core_count_lists() {
        assert_eq!(amd_core_counts().last(), Some(&48));
        assert_eq!(intel_core_counts().last(), Some(&80));
    }
}
