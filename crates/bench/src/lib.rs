//! The experiment harness.
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index); this library holds what they share: standard run
//! configurations, a parallel sweep executor, and uniform output helpers.
//!
//! All binaries print plain-text tables via [`metrics::table`] so their
//! output can be diffed against EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use app::{ListenKind, RunConfig, RunResult, ServerKind, Workload};
use sim::time::ms;
use sim::topology::Machine;

pub mod lb;

/// The three listen-socket implementations every figure compares.
pub const IMPLS: [ListenKind; 3] = [ListenKind::Stock, ListenKind::Fine, ListenKind::Affinity];

/// Core counts swept on the AMD machine (Figures 2, 3).
#[must_use]
pub fn amd_core_counts() -> Vec<usize> {
    vec![1, 8, 16, 24, 32, 40, 48]
}

/// Core counts swept on the Intel machine (Figures 5, 6).
#[must_use]
pub fn intel_core_counts() -> Vec<usize> {
    vec![1, 16, 32, 48, 64, 80]
}

/// A calibrated initial guess for the saturating connection rate, so the
/// search converges in few runs.
#[must_use]
pub fn rate_guess(listen: ListenKind, server: ServerKind, cores: usize) -> f64 {
    let per_core_rps: f64 = match (listen, server.poll_based()) {
        // Twenty shares stock's single accept lock, so it saturates there.
        (ListenKind::Stock | ListenKind::Twenty, _) => (160_000.0 / cores as f64).min(12_500.0),
        (ListenKind::Fine, false) => 8_700.0,
        (ListenKind::Affinity | ListenKind::BusyPoll, false) => 9_800.0,
        (ListenKind::Fine, true) => 13_500.0,
        (ListenKind::Affinity | ListenKind::BusyPoll, true) => 15_500.0,
    };
    let rps = per_core_rps * cores as f64;
    // Cap near the wire's capacity for large responses.
    rps / 6.0
}

/// A baseline configuration for the given machine/implementation/server.
#[must_use]
pub fn base_config(
    machine: Machine,
    cores: usize,
    listen: ListenKind,
    server: ServerKind,
) -> RunConfig {
    // The initial rate guess scales with cores; the saturation search
    // ramps from here.
    let guess = rate_guess(listen, server, cores);
    let mut cfg = RunConfig::new(machine, cores, listen, server, Workload::base(), guess);
    cfg.warmup = ms(450);
    cfg.measure = ms(300);
    cfg
}

/// Runs `configs` through the saturation search in parallel (one OS
/// thread per hardware thread), preserving input order in the output.
#[must_use]
pub fn sweep_saturation(configs: Vec<RunConfig>) -> Vec<RunResult> {
    sweep_with(configs, default_workers(), |cfg| app::find_saturation(&cfg))
}

/// Runs `configs` directly (no rate search) in parallel.
#[must_use]
pub fn sweep_fixed(configs: Vec<RunConfig>) -> Vec<RunResult> {
    sweep_fixed_workers(configs, default_workers())
}

/// [`sweep_fixed`] with an explicit worker-thread count. Results are
/// returned in input order and must not depend on `workers` — `simcheck`
/// audits exactly that property at worker counts 1/2/N.
#[must_use]
pub fn sweep_fixed_workers(configs: Vec<RunConfig>, workers: usize) -> Vec<RunResult> {
    sweep_with(configs, workers, checked_run)
}

/// Default sweep parallelism: one worker per hardware thread.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
}

/// Whether `--check` was passed to the current binary: every figure
/// binary then verifies the conservation audit of each run it performs,
/// aborting with the violation list on the first bad run.
#[must_use]
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Runs one config, enforcing its conservation audit in `--check` mode.
fn checked_run(cfg: RunConfig) -> RunResult {
    let check = check_mode();
    let label = check.then(|| {
        format!(
            "{} {} cores={} rate={} seed={}",
            cfg.listen.label(),
            cfg.server.label(),
            cfg.cores,
            cfg.conn_rate,
            cfg.seed
        )
    });
    let r = app::Runner::new(cfg).run();
    if let Some(label) = label {
        let violations = r.audit.violations();
        assert!(
            violations.is_empty(),
            "--check: conservation audit failed for [{label}]:\n  {}",
            violations.join("\n  ")
        );
    }
    r
}

fn sweep_with<F>(configs: Vec<RunConfig>, workers: usize, f: F) -> Vec<RunResult>
where
    F: Fn(RunConfig) -> RunResult + Sync,
{
    sweep_map(configs, workers, f)
}

/// Runs an arbitrary job over each config on a worker pool, preserving
/// input order in the output (the generic engine behind the sweeps;
/// `simcheck` uses it directly for its audit pass).
pub fn sweep_map<T, F>(configs: Vec<RunConfig>, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(RunConfig) -> T + Sync,
{
    let n = configs.len();
    let workers = workers.clamp(1, n.max(1));
    // A shared work-list plus an mpsc channel: each worker claims the
    // next un-run config, runs it outside the lock, and sends the result
    // back tagged with its input index.
    let jobs: std::sync::Mutex<std::collections::VecDeque<(usize, RunConfig)>> =
        std::sync::Mutex::new(configs.into_iter().enumerate().collect());
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let jobs = &jobs;
            let f = &f;
            s.spawn(move || loop {
                let job = jobs.lock().expect("sweep queue poisoned").pop_front();
                let Some((i, cfg)) = job else { break };
                let r = f(cfg);
                tx.send((i, r)).expect("receiver alive");
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("all jobs ran")).collect()
    })
}

/// Formats a per-core throughput series as the figures print it.
#[must_use]
pub fn throughput_series(name: &str, xs: &[usize], results: &[RunResult]) -> String {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(results)
        .map(|(x, r)| (*x as f64, r.rps_per_core))
        .collect();
    metrics::table::series(name, "cores", "requests/sec/core", &pts)
}

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("  (Affinity-Accept reproduction; simulated hardware — compare");
    println!("   shapes and ratios with the paper, not absolute numbers)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        let cfgs: Vec<RunConfig> = [1usize, 2]
            .iter()
            .map(|c| {
                let mut cfg = base_config(
                    Machine::amd48(),
                    *c,
                    ListenKind::Affinity,
                    ServerKind::apache(),
                );
                cfg.warmup = ms(30);
                cfg.measure = ms(60);
                cfg.conn_rate = 500.0;
                cfg.tracked_files = 50;
                cfg
            })
            .collect();
        let rs = sweep_fixed(cfgs);
        assert_eq!(rs.len(), 2);
        // Both served roughly the same offered load; per-core differs ~2x.
        assert!(rs[0].served > 0 && rs[1].served > 0);
    }

    #[test]
    fn core_count_lists() {
        assert_eq!(amd_core_counts().last(), Some(&48));
        assert_eq!(intel_core_counts().last(), Some(&80));
    }
}
