//! Criterion microbenchmarks of the simulator's hot paths: the coherence
//! model, the flow-steering tables, the accept-path operations of the
//! three listen sockets, and the event queue.

use affinity_accept::{
    AcceptOutcome, AffinityAccept, FineAccept, ListenConfig, ListenSocket, StockAccept,
};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::layout::FieldTag;
use mem::{CacheModel, DataType};
use nic::packet::RingId;
use nic::steering::{FlowGroupTable, PerFlowTable, RssTable};
use nic::FlowTuple;
use sim::topology::{CoreId, Machine};
use sim::EventQueue;
use std::hint::black_box;
use tcp::Kernel;

fn bench_cache_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("local_tagged_access", |b| {
        let mut m = CacheModel::new(Machine::amd48());
        let sock = m.alloc(DataType::TcpSock, CoreId(0));
        b.iter(|| {
            black_box(m.access_tagged(CoreId(0), sock, FieldTag::BothRwByRx, true));
        });
    });
    g.bench_function("ping_pong_tagged_access", |b| {
        let mut m = CacheModel::new(Machine::amd48());
        let sock = m.alloc(DataType::TcpSock, CoreId(0));
        let mut i = 0u16;
        b.iter(|| {
            let core = CoreId(if i.is_multiple_of(2) { 0 } else { 12 });
            i = i.wrapping_add(1);
            black_box(m.access_tagged(core, sock, FieldTag::BothRwByRx, true));
        });
    });
    g.finish();
}

fn bench_steering(c: &mut Criterion) {
    let mut g = c.benchmark_group("steering");
    let tuple = FlowTuple::client(7, 4321, 80);
    g.bench_function("rss_route", |b| {
        let t = RssTable::new(64);
        b.iter(|| black_box(t.route(tuple.hash())));
    });
    g.bench_function("flow_group_route", |b| {
        let t = FlowGroupTable::new(48, 4096);
        b.iter(|| black_box(t.route(&tuple)));
    });
    g.bench_function("per_flow_route_hit", |b| {
        let mut t = PerFlowTable::new(48, 32 * 1024);
        t.insert(0, tuple.hash(), RingId(5));
        b.iter(|| black_box(t.route(&tuple)));
    });
    g.finish();
}

fn bench_accept_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("accept_path");
    g.sample_size(20);
    // One full SYN→ACK→accept cycle per iteration, for each implementation.
    macro_rules! bench_impl {
        ($name:literal, $make:expr) => {
            g.bench_function($name, |b| {
                let mut k = Kernel::new(Machine::amd48());
                let mut s = $make(&mut k);
                let mut at = 0u64;
                let mut port = 0u16;
                b.iter(|| {
                    let tuple = FlowTuple::client(u32::from(port), port.wrapping_add(1).max(1), 80);
                    s.on_syn(&mut k, CoreId(0), at, tuple);
                    at += 50_000;
                    s.on_ack(&mut k, CoreId(0), at, tuple);
                    at += 50_000;
                    match s.try_accept(&mut k, CoreId(0), at) {
                        AcceptOutcome::Accepted { item, .. } => {
                            tcp::ops::accept_established(
                                &mut k,
                                CoreId(0),
                                at,
                                item.conn,
                                item.req_obj,
                            );
                            tcp::ops::sys_close(&mut k, CoreId(0), at, item.conn);
                            k.remove_conn(item.conn);
                        }
                        AcceptOutcome::Empty { .. } => panic!("queue should have one"),
                    }
                    at += 50_000;
                    port = port.wrapping_add(1);
                });
            });
        };
    }
    bench_impl!("stock", |k: &mut Kernel| StockAccept::new(
        k,
        ListenConfig::paper(4)
    ));
    bench_impl!("fine", |k: &mut Kernel| FineAccept::new(
        k,
        ListenConfig::paper(4)
    ));
    bench_impl!("affinity", |k: &mut Kernel| AffinityAccept::new(
        k,
        ListenConfig::paper(4)
    ));
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1024u64 {
            q.push(i * 100, i);
        }
        b.iter(|| {
            let (time, ev) = q.pop().expect("non-empty");
            t = time + 102_400;
            q.push(t, ev);
        });
    });
}

fn bench_full_run(c: &mut Criterion) {
    use app::{ListenKind, RunConfig, Runner, ServerKind, Workload};
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for listen in [ListenKind::Stock, ListenKind::Fine, ListenKind::Affinity] {
        g.bench_function(format!("mini_run_{}", listen.label()), |b| {
            b.iter(|| {
                let mut cfg = RunConfig::new(
                    Machine::amd48(),
                    2,
                    listen,
                    ServerKind::apache(),
                    Workload::base(),
                    1_000.0,
                );
                cfg.warmup = sim::time::ms(40);
                cfg.measure = sim::time::ms(40);
                cfg.tracked_files = 20;
                black_box(Runner::new(cfg).run().served)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_model,
    bench_steering,
    bench_accept_paths,
    bench_event_queue,
    bench_full_run
);
criterion_main!(benches);
