//! Regenerates the recorded §6.5-B table from its pinned `(config, seed)`
//! and checks the numbers EXPERIMENTS.md quotes. Three 48-core runs, so
//! `#[ignore]`d by default; the nightly CI job runs it with `--ignored`:
//!
//! ```sh
//! cargo test --release -p bench --test lb_regen -- --ignored
//! ```

use app::Runner;
use bench::lb::{lb_migration_cases, LB_MIGRATION_RECORDED_MS};
use sim::time::to_ms;

#[test]
#[ignore = "three 48-core runs; nightly CI and manual regeneration only"]
fn lb_migration_table_regenerates_exactly() {
    for ((name, cfg), recorded) in lb_migration_cases()
        .into_iter()
        .zip(LB_MIGRATION_RECORDED_MS)
    {
        let r = Runner::new(cfg).run();
        let rt = r.batch_runtime.expect("job ran");
        let shown = format!("{:.0}", to_ms(rt));
        assert_eq!(
            shown,
            recorded.to_string(),
            "[{name}] make runtime diverged from the recorded table \
             (EXPERIMENTS.md §6.5-B / results/lb_migration.txt)"
        );
        let v = r.audit.violations();
        assert!(v.is_empty(), "[{name}] audit violations: {v:?}");
    }
}
