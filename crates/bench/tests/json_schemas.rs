//! Schema round-trip tests for the JSON artifacts the bench binaries write.
//!
//! Nightly CI uploads `results/chaos.json`, `results/recovery.json`, and
//! `results/BENCH_sim.json`; downstream tooling reads them by field name.
//! These tests run each writer in its cheapest mode, re-read the artifact
//! through `Json::parse`, and pin the fields that must not be renamed
//! silently. A writer-side rename now fails here instead of producing a
//! nightly artifact nobody can read.

use metrics::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn run_binary(exe: &str, args: &[&str], out: &PathBuf) -> Json {
    let status = Command::new(exe)
        .args(args)
        .arg("--out")
        .arg(out)
        .status()
        .unwrap_or_else(|e| panic!("spawn {exe}: {e}"));
    assert!(status.success(), "{exe} exited with {status}");
    let text = std::fs::read_to_string(out).expect("artifact written");
    let doc = Json::parse(&text).expect("artifact is valid JSON");
    // The writers must emit exactly what our renderer produces, so the
    // textual fixpoint holds on real artifacts, not just synthetic docs.
    assert_eq!(doc.render(), text.trim_end(), "render fixpoint for {exe}");
    doc
}

fn obj<'a>(doc: &'a Json, key: &str) -> &'a Json {
    doc.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {}", doc.render()))
}

fn arr<'a>(doc: &'a Json, key: &str) -> &'a [Json] {
    match obj(doc, key) {
        Json::Arr(items) => items,
        other => panic!("field {key:?} is not an array: {}", other.render()),
    }
}

fn assert_u64(doc: &Json, key: &str) {
    assert!(
        matches!(obj(doc, key), Json::U64(_)),
        "field {key:?} is not a u64"
    );
}

fn assert_num(doc: &Json, key: &str) {
    assert!(
        matches!(obj(doc, key), Json::U64(_) | Json::I64(_) | Json::F64(_)),
        "field {key:?} is not numeric"
    );
}

fn assert_bool(doc: &Json, key: &str) {
    assert!(
        matches!(obj(doc, key), Json::Bool(_)),
        "field {key:?} is not a bool"
    );
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bench-json-schemas");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn chaos_artifact_schema_round_trips() {
    let out = tmp("chaos.json");
    let doc = run_binary(
        env!("CARGO_BIN_EXE_chaos"),
        &["--cases", "2", "--seed", "7"],
        &out,
    );
    assert_u64(&doc, "cases");
    assert_u64(&doc, "base_seed");
    assert_bool(&doc, "ok");
    let fuzz = obj(&doc, "fuzz");
    assert_u64(fuzz, "cases");
    assert_bool(fuzz, "ok");
    let cluster = obj(&doc, "cluster");
    assert_u64(cluster, "cases");
    assert_bool(cluster, "ok");
    assert!(matches!(obj(cluster, "failures"), Json::Arr(_)));
    let ordering = obj(&doc, "ordering");
    assert_bool(ordering, "ok");
}

#[test]
fn cluster_artifact_schema_round_trips() {
    let out = tmp("cluster.json");
    let doc = run_binary(env!("CARGO_BIN_EXE_cluster"), &["--smoke"], &out);
    assert!(matches!(obj(&doc, "schema"), Json::Str(_)));
    assert_bool(&doc, "smoke");
    assert_bool(&doc, "ok");

    let kill = obj(&doc, "kill");
    assert_u64(kill, "hosts");
    assert_u64(kill, "kill_host");
    assert_u64(kill, "kill_at_ms");
    assert_u64(kill, "bucket_ms");
    assert_u64(kill, "detection_bound_ms");
    assert_bool(kill, "ok");
    let policies = arr(kill, "policies");
    assert!(!policies.is_empty(), "kill pass reports every LB policy");
    for row in policies {
        assert!(matches!(obj(row, "policy"), Json::Str(_)));
        assert_u64(row, "baseline_served");
        assert_u64(row, "kill_served");
        assert_num(row, "goodput_retained");
        assert_bool(row, "recovered_in_time");
        assert_u64(row, "stranded");
        assert_u64(row, "recovered");
        assert_u64(row, "misroutes");
        assert_u64(row, "retries_scheduled");
        assert_num(row, "retry_amplification");
        assert_bool(row, "replay_identical");
        assert_bool(row, "backend_identical");
        assert!(matches!(obj(row, "timeline"), Json::Arr(_)));
        assert!(matches!(obj(row, "problems"), Json::Arr(_)));
        assert_bool(row, "ok");
    }

    let rolling = obj(&doc, "rolling");
    assert_u64(rolling, "hosts");
    assert_u64(rolling, "stagger_ms");
    assert_u64(rolling, "drain_timeout_ms");
    assert_bool(rolling, "ok");
    let policies = arr(rolling, "policies");
    assert!(!policies.is_empty(), "rolling pass reports every LB policy");
    for row in policies {
        assert!(matches!(obj(row, "policy"), Json::Str(_)));
        assert_u64(row, "served");
        assert_u64(row, "restarts");
        assert_u64(row, "drains");
        assert_u64(row, "drain_done");
        assert_u64(row, "drain_forced");
        assert_u64(row, "stranded");
        assert_u64(row, "timeouts_dead_owner");
        assert_num(row, "retry_amplification");
        assert_bool(row, "ok");
    }

    let flash = obj(&doc, "flash");
    assert_u64(flash, "hosts");
    assert_num(flash, "multiplier");
    assert_num(flash, "affinity_vs_stock");
    assert_bool(flash, "ok");
    let kinds = arr(flash, "kinds");
    assert!(!kinds.is_empty(), "flash pass compares listen kinds");
    for row in kinds {
        assert!(matches!(obj(row, "kind"), Json::Str(_)));
        assert_u64(row, "served");
        assert_u64(row, "timeouts");
        assert_u64(row, "stranded");
        assert_num(row, "retry_amplification");
    }
}

#[test]
fn recovery_artifact_schema_round_trips() {
    let out = tmp("recovery.json");
    let doc = run_binary(env!("CARGO_BIN_EXE_recovery"), &["--smoke"], &out);
    assert_bool(&doc, "smoke");
    assert_bool(&doc, "ok");

    let kill = obj(&doc, "kill");
    assert_u64(kill, "cores");
    assert_u64(kill, "kill_core");
    assert_num(kill, "kill_at_ms");
    assert_num(kill, "bucket_ms");
    let kinds = arr(kill, "kinds");
    assert!(!kinds.is_empty(), "kill pass reports at least one kind");
    for row in kinds {
        assert!(matches!(obj(row, "kind"), Json::Str(_)));
        assert_u64(row, "baseline_served");
        assert_u64(row, "kill_served");
        assert_num(row, "goodput_retained");
        assert_bool(row, "recovered");
        assert_num(row, "time_to_recover_ms");
        assert_u64(row, "timeouts_live_owner");
        assert_u64(row, "rehome_ops");
        assert_bool(row, "ok");
    }

    let flood = obj(&doc, "flood");
    assert_u64(flood, "cores");
    assert_num(flood, "rate_multiple");
    let kinds = arr(flood, "kinds");
    assert!(!kinds.is_empty(), "flood pass reports at least one kind");
    for row in kinds {
        assert!(matches!(obj(row, "kind"), Json::Str(_)));
        assert_u64(row, "served");
        assert_u64(row, "cookies_issued");
        assert_u64(row, "cookies_validated");
        assert_u64(row, "cookies_established");
        assert_u64(row, "cookie_drops");
        assert_u64(row, "reaped");
        assert_bool(row, "ok");
    }
}

#[test]
fn scenario_artifact_schema_round_trips() {
    let out = tmp("scenarios.json");
    let doc = run_binary(
        env!("CARGO_BIN_EXE_scenario"),
        &["--file", "scenarios/sharded_backend.json"],
        &out,
    );
    assert!(matches!(obj(&doc, "schema"), Json::Str(_)));
    assert_bool(&doc, "smoke");
    assert_bool(&doc, "ok");
    let scenarios = arr(&doc, "scenarios");
    assert_eq!(scenarios.len(), 1, "one --file produces one report");
    for report in scenarios {
        assert!(matches!(obj(report, "scenario"), Json::Str(_)));
        assert_bool(report, "ok");
        assert!(matches!(obj(report, "problems"), Json::Arr(_)));
        let kinds = arr(report, "kinds");
        assert!(!kinds.is_empty(), "scenario reports at least one kind");
        for row in kinds {
            assert!(matches!(obj(row, "kind"), Json::Str(_)));
            assert_u64(row, "served");
            assert_u64(row, "completed");
            assert_u64(row, "timeouts");
            assert!(matches!(obj(row, "fingerprint"), Json::Str(_)));
            assert_u64(row, "cookies");
            assert_u64(row, "rehomes");
            assert_u64(row, "timeouts_live_owner");
            // The dprof-v2 waste columns the packed-layout gate reads
            // (zero when the scenario keeps the ledger off).
            assert_num(row, "wasted_bytes_per_request");
            assert_num(row, "paper_wasted_bytes_per_request");
            assert!(matches!(obj(row, "audit_violations"), Json::Arr(_)));
            let runs = arr(row, "runs");
            assert!(!runs.is_empty(), "kind reports at least one run");
            for run in runs {
                assert_u64(run, "cores");
                assert_num(run, "rate");
                assert_u64(run, "served");
                assert_num(run, "rps_per_core");
                assert!(matches!(obj(run, "fingerprint"), Json::Str(_)));
                assert_u64(run, "events");
            }
        }
    }
}

#[test]
fn cacheline_artifact_schema_round_trips() {
    let out = tmp("cacheline.json");
    let doc = run_binary(env!("CARGO_BIN_EXE_cacheline"), &["--smoke"], &out);
    assert!(matches!(obj(&doc, "schema"), Json::Str(_)));
    assert!(matches!(obj(&doc, "mode"), Json::Str(_)));
    assert!(matches!(obj(&doc, "instrumentation"), Json::Str(_)));
    assert_bool(&doc, "ledger_fingerprint_neutral");
    assert_bool(&doc, "ok");
    let gate = obj(&doc, "gate");
    assert_bool(gate, "checked");
    assert_num(gate, "packed_fine_wasted_per_req");
    assert_num(gate, "paper_fine_wasted_per_req");
    assert_bool(gate, "ok");
    let variants = arr(&doc, "variants");
    assert_eq!(variants.len(), 2, "paper and packed variants");
    for variant in variants {
        assert!(matches!(obj(variant, "layout"), Json::Str(_)));
        let kinds = arr(variant, "kinds");
        assert_eq!(kinds.len(), 3, "stock, fine, affinity");
        for row in kinds {
            assert!(matches!(obj(row, "kind"), Json::Str(_)));
            assert_u64(row, "served");
            assert!(matches!(obj(row, "fingerprint"), Json::Str(_)));
            assert_bool(row, "ledger_enabled");
            assert_num(row, "wasted_bytes_per_request");
            assert_num(row, "bytes_fetched_per_request");
            assert_num(row, "reuse_per_eviction");
            assert_num(row, "busy_cycles_per_request");
            let types = arr(row, "types");
            if cfg!(feature = "fast") {
                assert!(types.is_empty(), "fast compiles the ledger out");
            } else {
                assert!(!types.is_empty(), "instrumented run records types");
                for t in types {
                    assert!(matches!(obj(t, "type"), Json::Str(_)));
                    assert_u64(t, "fills");
                    assert_u64(t, "warm_gens");
                    assert_num(t, "wasted_bytes_per_request");
                    assert_num(t, "reuse_per_eviction");
                    assert_u64(t, "shared_lines");
                    assert_u64(t, "shared_bytes");
                }
            }
        }
    }
}

#[test]
fn wallclock_artifact_schema_round_trips() {
    let out = tmp("bench_sim.json");
    let doc = run_binary(
        env!("CARGO_BIN_EXE_wallclock"),
        &["--smoke", "--repeats", "1", "--threads", "2"],
        &out,
    );
    assert!(matches!(obj(&doc, "schema"), Json::Str(_)));
    assert!(matches!(obj(&doc, "mode"), Json::Str(_)));
    assert_u64(&doc, "repeats");
    assert_u64(&doc, "total_events");
    assert_num(&doc, "total_wheel_wall_s");
    let kinds = arr(&doc, "kinds");
    assert!(!kinds.is_empty(), "wallclock reports at least one kind");
    for row in kinds {
        assert!(matches!(obj(row, "listen"), Json::Str(_)));
        assert_u64(row, "events");
        assert!(matches!(obj(row, "fingerprint"), Json::Str(_)));
        assert_num(row, "events_per_sec");
        assert_num(row, "wheel_vs_heap");

        // The conflict-partition block (DESIGN.md §11): downstream
        // tooling plots parallel_fraction/speedup_bound per kind.
        let part = obj(row, "partition");
        assert_u64(part, "core_events");
        assert_u64(part, "client_events");
        assert_u64(part, "global_events");
        assert_u64(part, "conflicted_events");
        assert_u64(part, "serialization_points");
        assert_u64(part, "waves");
        assert_u64(part, "max_wave");
        assert_u64(part, "critical_path_events");
        assert_num(part, "parallel_fraction");
        assert_num(part, "speedup_bound");

        // The cacheline block the bytes-per-request gate reads back:
        // present in instrumented builds, omitted under `fast` (the
        // ledger is compiled out, so there is nothing to report).
        if cfg!(feature = "fast") {
            assert!(
                row.get("cacheline").is_none(),
                "fast build must omit the cacheline block"
            );
        } else {
            let cl = obj(row, "cacheline");
            assert_num(cl, "wasted_bytes_per_request");
            assert_num(cl, "bytes_fetched_per_request");
            assert_num(cl, "reuse_per_eviction");
        }

        // The sharded lanes the parallel-speedup gate reads back.
        let lanes = arr(row, "sharded");
        assert!(!lanes.is_empty(), "--threads 2 produces a sharded lane");
        for lane in lanes {
            assert_u64(lane, "threads");
            assert_num(lane, "wall_s");
            assert_num(lane, "events_per_sec");
            assert_num(lane, "vs_wheel");
        }
    }
}
