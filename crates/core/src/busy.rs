//! Busy-core tracking (§3.3.1).
//!
//! Each core's busy status is derived from its local accept queue: the
//! instantaneous length crossing the **high watermark** (75 % of the max
//! local queue length) marks it busy; because applications accept in
//! bursts, the status is cleared more cautiously — only when an EWMA of
//! the queue length (α = 1 / (2·max-local-length)) drops below the **low
//! watermark** (10 %).
//!
//! The statuses live in a per-listen-socket bit vector occupying one cache
//! line, so a prospective stealer learns every core's status with a single
//! read; when nothing changes the line stays shared in every core's cache.

use mem::layout::FieldTag;
use mem::{DataType, ObjId};
use metrics::Ewma;
use sim::topology::CoreId;
use tcp::Kernel;

/// Per-core queue-length statistics.
#[derive(Debug, Clone)]
struct CoreBusy {
    ewma: Ewma,
    busy: bool,
}

/// The busy-status tracker for one listen socket.
#[derive(Debug)]
pub struct BusyTracker {
    cores: Vec<CoreBusy>,
    bitmap: u128,
    /// The shared bit-vector cache line.
    pub bitmap_obj: ObjId,
    high: f64,
    low: f64,
    max_local_queue: usize,
    /// Busy-status transitions (for diagnostics).
    pub transitions: u64,
}

impl BusyTracker {
    /// Creates a tracker for `n_cores` cores with the given watermark
    /// fractions of `max_local_queue`.
    pub fn new(
        k: &mut Kernel,
        n_cores: usize,
        max_local_queue: usize,
        high_frac: f64,
        low_frac: f64,
    ) -> Self {
        let max = max_local_queue.max(1) as f64;
        Self {
            cores: vec![
                CoreBusy {
                    ewma: Ewma::for_accept_queue(max_local_queue),
                    busy: false,
                };
                n_cores
            ],
            bitmap: 0,
            bitmap_obj: k.cache.alloc(DataType::BusyBitmap, CoreId(0)),
            high: high_frac * max,
            low: low_frac * max,
            max_local_queue,
            transitions: 0,
        }
    }

    /// Forcibly clears `core`'s busy status and resets its queue EWMA
    /// (hotplug: the core is offline and its queue has been re-homed, so
    /// its history is meaningless).
    pub fn clear(&mut self, k: &mut Kernel, core: CoreId) {
        self.cores[core.index()].ewma = Ewma::for_accept_queue(self.max_local_queue);
        self.set_busy(k, core, false);
    }

    /// Whether `core` is currently marked busy.
    #[must_use]
    pub fn is_busy(&self, core: CoreId) -> bool {
        self.cores[core.index()].busy
    }

    /// The busy bit vector (one read tells a stealer everything).
    #[must_use]
    pub fn bitmap(&self) -> u128 {
        self.bitmap
    }

    /// Busy cores other than `me`, in deterministic core order.
    #[must_use]
    pub fn busy_remotes(&self, me: CoreId) -> Vec<CoreId> {
        (0..self.cores.len())
            .filter(|i| *i != me.index() && self.cores[*i].busy)
            .map(|i| CoreId(i as u16))
            .collect()
    }

    /// Cache cost of consulting the bit vector from `core`.
    pub fn read_access(&self, k: &mut Kernel, core: CoreId) -> mem::cache::Access {
        k.cache
            .access_tagged(core, self.bitmap_obj, FieldTag::GlobalNode, false)
    }

    fn set_busy(&mut self, k: &mut Kernel, core: CoreId, busy: bool) {
        let c = &mut self.cores[core.index()];
        if c.busy != busy {
            c.busy = busy;
            self.transitions += 1;
            if busy {
                self.bitmap |= 1 << core.index();
            } else {
                self.bitmap &= !(1 << core.index());
            }
            // A status change writes the shared line, invalidating the
            // copies every non-busy core holds.
            k.cache
                .access_tagged(core, self.bitmap_obj, FieldTag::GlobalNode, true);
        }
    }

    /// Records a connection being added to `core`'s queue, which now has
    /// `queue_len` entries (§3.3.1 updates the EWMA on each enqueue).
    pub fn on_enqueue(&mut self, k: &mut Kernel, core: CoreId, queue_len: usize) {
        self.cores[core.index()].ewma.update(queue_len as f64);
        if queue_len as f64 > self.high {
            self.set_busy(k, core, true);
        }
    }

    /// Re-evaluates the non-busy condition for `core` (called on dequeue
    /// and by the work stealer): the EWMA must be below the low watermark.
    pub fn reconsider(&mut self, k: &mut Kernel, core: CoreId, queue_len: usize) {
        let c = &self.cores[core.index()];
        if c.busy && c.ewma.value() < self.low && (queue_len as f64) < self.high {
            self.set_busy(k, core, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup(max_local: usize) -> (BusyTracker, Kernel) {
        let mut k = Kernel::new(Machine::amd48());
        let t = BusyTracker::new(&mut k, 8, max_local, 0.75, 0.10);
        (t, k)
    }

    #[test]
    fn starts_non_busy() {
        let (t, _k) = setup(64);
        assert_eq!(t.bitmap(), 0);
        assert!(!t.is_busy(CoreId(3)));
        assert!(t.busy_remotes(CoreId(0)).is_empty());
    }

    #[test]
    fn crossing_high_watermark_marks_busy() {
        let (mut t, mut k) = setup(64);
        t.on_enqueue(&mut k, CoreId(2), 49); // > 48 = 0.75 * 64
        assert!(t.is_busy(CoreId(2)));
        assert_eq!(t.bitmap(), 0b100);
        assert_eq!(t.busy_remotes(CoreId(0)), vec![CoreId(2)]);
        // A busy core is not its own remote.
        assert!(t.busy_remotes(CoreId(2)).is_empty());
    }

    #[test]
    fn instantaneous_drop_does_not_clear_busy() {
        let (mut t, mut k) = setup(64);
        // Drive the EWMA high, then observe a single empty-queue moment.
        for _ in 0..200 {
            t.on_enqueue(&mut k, CoreId(1), 50);
        }
        assert!(t.is_busy(CoreId(1)));
        t.reconsider(&mut k, CoreId(1), 0);
        // EWMA is still ~50: stays busy despite the instantaneous 0.
        assert!(t.is_busy(CoreId(1)));
    }

    #[test]
    fn sustained_low_queue_clears_busy() {
        let (mut t, mut k) = setup(64);
        for _ in 0..200 {
            t.on_enqueue(&mut k, CoreId(1), 50);
        }
        assert!(t.is_busy(CoreId(1)));
        // Long quiet period: enqueues with near-empty queue drag the EWMA
        // below the low watermark (6.4).
        for _ in 0..2000 {
            t.on_enqueue(&mut k, CoreId(1), 1);
            t.reconsider(&mut k, CoreId(1), 1);
        }
        assert!(!t.is_busy(CoreId(1)));
    }

    #[test]
    fn hysteresis_counts_transitions() {
        let (mut t, mut k) = setup(64);
        for _ in 0..200 {
            t.on_enqueue(&mut k, CoreId(0), 60);
        }
        for _ in 0..3000 {
            t.on_enqueue(&mut k, CoreId(0), 0);
            t.reconsider(&mut k, CoreId(0), 0);
        }
        assert_eq!(t.transitions, 2); // busy, then non-busy
    }

    #[test]
    fn clear_resets_status_and_history() {
        let (mut t, mut k) = setup(64);
        for _ in 0..200 {
            t.on_enqueue(&mut k, CoreId(1), 50);
        }
        assert!(t.is_busy(CoreId(1)));
        t.clear(&mut k, CoreId(1));
        assert!(!t.is_busy(CoreId(1)));
        assert_eq!(t.bitmap() & 0b10, 0);
        // The EWMA restarted: one small enqueue does not re-mark busy and
        // reconsider sees a fresh low history.
        t.on_enqueue(&mut k, CoreId(1), 1);
        assert!(!t.is_busy(CoreId(1)));
    }

    #[test]
    fn bitmap_read_is_cheap_when_stable() {
        let (t, mut k) = setup(64);
        let c0 = CoreId(0);
        t.read_access(&mut k, c0);
        // Second read from the same core hits L1.
        let a = t.read_access(&mut k, c0);
        assert_eq!(a.latency, Machine::amd48().lat.l1);
    }
}
