//! Twenty-Policy: hardware per-flow steering (§7.1, Figure 10).
//!
//! The IXGBE driver's historical attempt at connection affinity: on every
//! 20th transmitted packet of a flow, insert an FDir entry routing the
//! flow's *incoming* packets to the core that called `sendmsg()`. The
//! paper shows why this loses: inserting costs ~10,000 cycles (hash
//! computation dominates), the driver cannot remove entries for dead
//! connections, and when the bounded table fills it must flush everything,
//! halting transmission and missing received packets.
//!
//! Short connections never reach 20 transmitted packets, so they get no
//! steering at all — which is why Twenty-Policy only approaches
//! Affinity-Accept at very high connection reuse.

use nic::packet::RingId;
use nic::steering::PerFlowTable;
use nic::FlowTuple;
use sim::fastmap::FastMap;
use sim::time::Cycles;
use sim::topology::CoreId;
use tcp::ConnId;

/// Transmitted packets between FDir updates.
pub const UPDATE_PERIOD: u32 = 20;

/// Driver state for the every-20th-packet steering policy.
#[derive(Debug, Default)]
pub struct TwentyPolicy {
    tx_counts: FastMap<ConnId, u32>,
    /// FDir insertions performed.
    pub updates: u64,
}

impl TwentyPolicy {
    /// Creates the policy with no tracked flows.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n_pkts` transmitted packets for `conn` from `core`;
    /// performs an FDir insert each time the count crosses a multiple of
    /// [`UPDATE_PERIOD`]. Returns the CPU cycles charged to the sender.
    pub fn on_tx(
        &mut self,
        table: &mut PerFlowTable,
        now: Cycles,
        conn: ConnId,
        tuple: &FlowTuple,
        core: CoreId,
        n_pkts: u32,
    ) -> Cycles {
        let count = self.tx_counts.entry(conn).or_insert(0);
        let before = *count;
        *count += n_pkts;
        let crossings = (*count / UPDATE_PERIOD) - (before / UPDATE_PERIOD);
        let mut cycles = 0;
        for _ in 0..crossings {
            cycles += table.insert(now, tuple.hash(), RingId(core.0));
            self.updates += 1;
        }
        cycles
    }

    /// Forgets a closed connection's counter. The *driver* cannot do this
    /// for its hardware table — that is the point — but the host-side
    /// counter map is ordinary memory.
    pub fn on_close(&mut self, conn: ConnId) {
        self.tx_counts.remove(&conn);
    }

    /// Flows currently tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.tx_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PerFlowTable {
        PerFlowTable::new(16, 1000)
    }

    #[test]
    fn short_connections_never_update() {
        let mut p = TwentyPolicy::new();
        let mut t = table();
        let tuple = FlowTuple::client(1, 5, 80);
        // 6 requests × ~2 packets: well under 20.
        for _ in 0..6 {
            let c = p.on_tx(&mut t, 0, ConnId(1), &tuple, CoreId(3), 2);
            assert_eq!(c, 0);
        }
        assert_eq!(p.updates, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn crossing_twenty_inserts() {
        let mut p = TwentyPolicy::new();
        let mut t = table();
        let tuple = FlowTuple::client(1, 6, 80);
        let mut total = 0;
        for _ in 0..10 {
            total += p.on_tx(&mut t, 0, ConnId(2), &tuple, CoreId(7), 3);
        }
        // 30 packets → one crossing at 20.
        assert_eq!(p.updates, 1);
        assert!(total >= nic::steering::FDIR_INSERT_CYCLES);
        assert_eq!(t.route(&tuple), RingId(7));
    }

    #[test]
    fn burst_can_cross_multiple_periods() {
        let mut p = TwentyPolicy::new();
        let mut t = table();
        let tuple = FlowTuple::client(1, 7, 80);
        p.on_tx(&mut t, 0, ConnId(3), &tuple, CoreId(1), 45);
        assert_eq!(p.updates, 2);
    }

    #[test]
    fn close_clears_counter() {
        let mut p = TwentyPolicy::new();
        let mut t = table();
        let tuple = FlowTuple::client(1, 8, 80);
        p.on_tx(&mut t, 0, ConnId(4), &tuple, CoreId(0), 5);
        assert_eq!(p.tracked(), 1);
        p.on_close(ConnId(4));
        assert_eq!(p.tracked(), 0);
    }

    #[test]
    fn resteering_follows_the_sender() {
        let mut p = TwentyPolicy::new();
        let mut t = table();
        let tuple = FlowTuple::client(1, 9, 80);
        p.on_tx(&mut t, 0, ConnId(5), &tuple, CoreId(2), 20);
        assert_eq!(t.route(&tuple), RingId(2));
        // The app thread migrated; the next crossing updates the entry.
        p.on_tx(&mut t, 0, ConnId(5), &tuple, CoreId(9), 20);
        assert_eq!(t.route(&tuple), RingId(9));
    }
}
