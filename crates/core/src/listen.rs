//! The listen-socket interface and shared machinery.
//!
//! A listen socket mediates three flows (§2.1, Figure 1): SYN packets
//! create request sockets; handshake-completing ACKs promote them to
//! established connections on an accept queue; `accept()` hands them to
//! the application. The three implementations differ in how these paths
//! are partitioned and locked, and in which core `accept()` prefers.

use mem::layout::FieldTag;
use mem::{DataType, ObjId};
use metrics::lockstat::LockClass;
use nic::FlowTuple;
use sim::lock::TimelineLock;
use sim::time::{ms, Cycles};
use sim::topology::CoreId;
use std::collections::VecDeque;
use tcp::{ConnId, Kernel};

/// A connection ready for `accept()`: in Linux the accept queue holds the
/// request socket, which points at the established child socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptItem {
    /// The established connection.
    pub conn: ConnId,
    /// The request socket `accept()` reads and frees.
    pub req_obj: ObjId,
}

/// Outcome of an ACK completing a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// Queued on `queue_core`'s accept queue.
    Enqueued {
        /// The connection created.
        conn: ConnId,
        /// The core whose queue holds it.
        queue_core: CoreId,
    },
    /// The accept queue was full; the connection was dropped (the client
    /// will time out and retry or give up — §3.3's motivating failure).
    DroppedOverflow,
}

/// Outcome of one `accept()` attempt.
///
/// `resume_at` is when the caller actually starts executing `cycles` of
/// work: under stock's mutex-mode socket lock the task sleeps (idle, not
/// spinning) until its FIFO turn on the lock; the fine-grained
/// implementations resume immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// A connection was dequeued.
    Accepted {
        /// What was accepted.
        item: AcceptItem,
        /// Cycles the attempt took once running.
        cycles: Cycles,
        /// Whether it came from another core's queue (stolen).
        stolen: bool,
        /// When the work starts (≥ the call time).
        resume_at: Cycles,
    },
    /// No connection available anywhere this implementation looks.
    Empty {
        /// Cycles the (failed) scan took.
        cycles: Cycles,
        /// When the scan ran.
        resume_at: Cycles,
    },
}

/// Configuration shared by the listen-socket implementations.
#[derive(Debug, Clone, Copy)]
pub struct ListenConfig {
    /// Cores participating in the run.
    pub n_cores: usize,
    /// The `listen()` backlog; Affinity-Accept splits it evenly across
    /// cores (§3.3.1). The paper finds 64–256 per core works well at 48
    /// cores; the default gives 128 per core on the AMD machine.
    pub max_backlog: usize,
    /// Local accepts per stolen accept in the proportional-share
    /// scheduler (the paper's 5:1).
    pub steal_ratio_local: u32,
    /// Busy high watermark as a fraction of the max local queue length.
    pub high_watermark: f64,
    /// Non-busy low watermark as a fraction of the max local queue length.
    pub low_watermark: f64,
    /// Flow-group migration interval (§3.3.2: 100 ms).
    pub migrate_interval: Cycles,
    /// Connection stealing enabled (§6.5 disables it for comparison).
    pub stealing: bool,
    /// Flow-group migration enabled (§6.5 disables it for comparison).
    pub migration: bool,
}

impl ListenConfig {
    /// The paper's configuration for `n_cores` active cores.
    #[must_use]
    pub fn paper(n_cores: usize) -> Self {
        Self {
            n_cores,
            max_backlog: 128 * n_cores,
            steal_ratio_local: 5,
            high_watermark: 0.75,
            low_watermark: 0.10,
            migrate_interval: ms(100),
            stealing: true,
            migration: true,
        }
    }

    /// Maximum local accept queue length (the backlog split per core).
    #[must_use]
    pub fn max_local_queue(&self) -> usize {
        (self.max_backlog / self.n_cores.max(1)).max(1)
    }
}

/// One accept queue (a listen-socket clone): the queue, its lock, and the
/// cache-model object whose lines enqueue/dequeue touch.
#[derive(Debug)]
pub struct CloneQueue {
    /// Pending accepted-but-not-`accept()`ed connections.
    pub items: VecDeque<AcceptItem>,
    /// The queue lock.
    pub lock: TimelineLock,
    /// The clone's `listen_sock` object.
    pub sock: ObjId,
}

impl CloneQueue {
    /// Creates an empty queue homed on `core`.
    pub fn new(k: &mut Kernel, core: CoreId) -> Self {
        Self {
            items: VecDeque::new(),
            lock: TimelineLock::new(LockClass::AcceptQueue),
            sock: k.cache.alloc(DataType::ListenSock, core),
        }
    }

    /// Cache cost of linking an item at the tail (producer side).
    pub fn enqueue_access(&self, k: &mut Kernel, core: CoreId) -> mem::cache::Access {
        let mut a = k
            .cache
            .access_tagged(core, self.sock, FieldTag::BothRwByRx, true);
        a.add(
            k.cache
                .access_tagged(core, self.sock, FieldTag::BothRo, false),
        );
        a
    }

    /// Cache cost of unlinking an item at the head (consumer side).
    pub fn dequeue_access(&self, k: &mut Kernel, core: CoreId) -> mem::cache::Access {
        let mut a = k
            .cache
            .access_tagged(core, self.sock, FieldTag::BothRwByRx, false);
        a.add(
            k.cache
                .access_tagged(core, self.sock, FieldTag::BothRwByApp, true),
        );
        a
    }
}

/// Counters every implementation maintains.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListenStats {
    /// Connections enqueued to an accept queue.
    pub enqueued: u64,
    /// Connections dropped on queue overflow.
    pub dropped_overflow: u64,
    /// Accepts served from the caller's own queue.
    pub accepts_local: u64,
    /// Accepts served from another core's queue.
    pub accepts_stolen: u64,
    /// Flow groups migrated (§3.3.2).
    pub flow_migrations: u64,
}

/// The listen-socket abstraction the runner and the benchmarks drive.
pub trait ListenSocket {
    /// Implementation name as printed by the harness.
    fn name(&self) -> &'static str;

    /// A SYN arrived on `core` (softirq context). Returns the duration.
    fn on_syn(&mut self, k: &mut Kernel, core: CoreId, at: Cycles, tuple: FlowTuple) -> Cycles;

    /// The handshake-completing ACK arrived on `core` (softirq context).
    fn on_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome);

    /// An ACK carrying a valid SYN cookie arrived on `core` (softirq
    /// context): no request socket exists — the connection is rebuilt
    /// statelessly ([`tcp::ops::cookie_establish`]) and enqueued like a
    /// normal handshake, subject to the same backlog caps. The runner
    /// only calls this when cookie mode is enabled.
    fn on_cookie_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome);

    /// Migrates everything queued on dead core `from` to live core `to`
    /// (the hotplug/watchdog recovery path, §4.3's load balancer taken to
    /// its conclusion). Cache costs are charged on `to`, which pulls the
    /// migrated lines. Returns `(cycles, items_moved)`. Implementations
    /// with one global queue have nothing core-local to move — the
    /// default no-op is correct for them.
    fn rehome(
        &mut self,
        _k: &mut Kernel,
        _from: CoreId,
        _to: CoreId,
        _at: Cycles,
    ) -> (Cycles, u64) {
        (0, 0)
    }

    /// An application thread on `core` attempts to accept at time `at`.
    fn try_accept(&mut self, k: &mut Kernel, core: CoreId, at: Cycles) -> AcceptOutcome;

    /// Preference-ordered cores whose sleeping acceptors should be woken
    /// after an enqueue on `queue_core`.
    fn wake_candidates(&mut self, queue_core: CoreId, out: &mut Vec<CoreId>);

    /// Whether waking `poll()`ers suffers the thundering herd (§4.1):
    /// stock and Fine wake every poller; Affinity-Accept wakes only the
    /// local core's.
    fn wakes_all_pollers(&self) -> bool {
        true
    }

    /// Whether a handshake arriving on `core` would find its accept queue
    /// already full: the global backlog for stock, `core`'s local queue
    /// for the per-core implementations. The fault plane uses this to
    /// drop SYNs at a saturated backlog (Linux with syncookies off)
    /// instead of allocating request sockets for doomed handshakes.
    fn backlogged(&self, core: CoreId) -> bool;

    /// Pending connections on `core`'s queue (or the global queue).
    fn queued_on(&self, core: CoreId) -> usize;

    /// Total pending connections.
    fn total_queued(&self) -> usize;

    /// Periodic load-balancer tick (§3.3.2). Implementations without one
    /// do nothing. Returns per-core cycles charged for FDir reprogramming.
    fn balance_tick(
        &mut self,
        _k: &mut Kernel,
        _groups: &mut nic::FlowGroupTable,
        _now: Cycles,
    ) -> Vec<(CoreId, Cycles)> {
        Vec::new()
    }

    /// Counter snapshot.
    fn stats(&self) -> ListenStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    #[test]
    fn paper_config_splits_backlog() {
        let cfg = ListenConfig::paper(48);
        assert_eq!(cfg.max_local_queue(), 128);
        assert_eq!(cfg.steal_ratio_local, 5);
        assert_eq!(cfg.migrate_interval, ms(100));
    }

    #[test]
    fn max_local_queue_never_zero() {
        let mut cfg = ListenConfig::paper(48);
        cfg.max_backlog = 10;
        assert_eq!(cfg.max_local_queue(), 1);
    }

    #[test]
    fn clone_queue_accesses_cost_cycles() {
        let mut k = Kernel::new(Machine::amd48());
        let q = CloneQueue::new(&mut k, CoreId(0));
        let a = q.enqueue_access(&mut k, CoreId(0));
        assert!(a.latency > 0);
        let d = q.dequeue_access(&mut k, CoreId(0));
        assert!(d.latency > 0);
    }

    #[test]
    fn cross_core_dequeue_costs_more() {
        let mut k = Kernel::new(Machine::amd48());
        let q = CloneQueue::new(&mut k, CoreId(0));
        // Warm up producer side on core 0.
        q.enqueue_access(&mut k, CoreId(0));
        let local = q.dequeue_access(&mut k, CoreId(0)).latency;
        q.enqueue_access(&mut k, CoreId(0));
        let remote = q.dequeue_access(&mut k, CoreId(12)).latency;
        assert!(remote > local, "remote {remote} local {local}");
    }
}
