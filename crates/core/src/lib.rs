//! Affinity-Accept: the paper's contribution.
//!
//! Three listen-socket implementations behind one trait, exactly as the
//! evaluation compares them (§6.2):
//!
//! * [`stock::StockAccept`] — the stock Linux listen socket: one request
//!   hash table and one accept queue, serialized under a single per-port
//!   socket lock that spins in softirq context and sleeps ("mutex mode")
//!   in syscall context (§2.1).
//! * [`fine::FineAccept`] — the intermediate design: per-core cloned
//!   accept queues with per-queue locks and per-bucket request-table
//!   locks; `accept()` dequeues round-robin across all clones, so locking
//!   scales but connection affinity is destroyed.
//! * [`affinity::AffinityAccept`] — the paper's design: `accept()` prefers
//!   the local clone's queue; short-term imbalance is fixed by
//!   *connection stealing* from busy cores at a 5:1 local:remote ratio
//!   (§3.3.1), long-term imbalance by *flow-group migration* in the NIC's
//!   FDir table every 100 ms (§3.3.2).
//!
//! [`twenty::TwentyPolicy`] models the IXGBE driver's hardware per-flow
//! steering (an FDir insert on every 20th transmitted packet), the §7.1
//! baseline of Figure 10. [`busy::BusyTracker`] is the EWMA/watermark
//! busy-status machinery shared by the load balancer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod busy;
pub mod fine;
pub mod listen;
pub mod stock;
pub mod twenty;

pub use affinity::AffinityAccept;
pub use fine::FineAccept;
pub use listen::{AcceptItem, AcceptOutcome, AckOutcome, ListenConfig, ListenSocket};
pub use stock::StockAccept;
pub use twenty::TwentyPolicy;
