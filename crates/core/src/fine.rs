//! Fine-Accept: fine-grained locking without affinity (§6.2).
//!
//! The intermediate design the evaluation uses to separate the two
//! effects: the listen socket is cloned per core (per-core accept queues,
//! each with its own lock; per-bucket request-table locks), removing the
//! lock bottleneck — but `accept()` dequeues **round-robin** across all
//! clones, so a connection's application side usually runs on a different
//! core than its packet side. Round-robin is intrinsically load balanced,
//! so Fine-Accept needs no load balancer.

use crate::listen::{
    AcceptItem, AcceptOutcome, AckOutcome, CloneQueue, ListenConfig, ListenSocket, ListenStats,
};
use nic::FlowTuple;
use sim::time::Cycles;
use sim::topology::CoreId;
use tcp::{ops, Kernel};

/// Hold time of a clone-queue lock for one enqueue/dequeue.
const QUEUE_LOCK_HOLD: Cycles = 700;
/// Cost of scanning an empty queue.
const EMPTY_SCAN_COST: Cycles = 250;

/// The cloned listen socket with round-robin accepts.
#[derive(Debug)]
pub struct FineAccept {
    cfg: ListenConfig,
    queues: Vec<CloneQueue>,
    /// Per-core round-robin cursor over the clones.
    rr: Vec<usize>,
    stats: ListenStats,
    /// FIFO wait-queue cursor for wakeups.
    wake_rr: usize,
}

impl FineAccept {
    /// Creates one clone per active core.
    pub fn new(k: &mut Kernel, cfg: ListenConfig) -> Self {
        let queues = (0..cfg.n_cores)
            .map(|i| CloneQueue::new(k, CoreId(i as u16)))
            .collect();
        Self {
            rr: vec![0; cfg.n_cores],
            cfg,
            queues,
            stats: ListenStats::default(),
            wake_rr: 0,
        }
    }
}

impl ListenSocket for FineAccept {
    fn name(&self) -> &'static str {
        "fine"
    }

    fn on_syn(&mut self, k: &mut Kernel, core: CoreId, at: Cycles, tuple: FlowTuple) -> Cycles {
        let (cycles, _req) = ops::syn(k, core, at, tuple, true);
        cycles
    }

    fn on_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        let Some(req) = k.reqs.lookup(&tuple) else {
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        };
        // Enforce the local split *and* the socket-wide backlog: the
        // per-core cap rounds up (`max(1)`), so with more cores than
        // backlog slots the local checks alone would over-admit.
        if self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
        {
            if let Some(r) = k.reqs.remove(req) {
                k.slab.free(core, r.obj, &mut k.cache);
            }
            self.stats.dropped_overflow += 1;
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) =
            ops::ack_establish(k, core, at, req, true).expect("request present");
        let q = &self.queues[core.index()];
        let enq = q.enqueue_access(k, core);
        let (_, spin) = self.queues[core.index()].lock.run_locked(
            at + work,
            QUEUE_LOCK_HOLD + enq.latency,
            &mut k.lockstat,
        );
        self.queues[core.index()]
            .items
            .push_back(AcceptItem { conn, req_obj });
        self.stats.enqueued += 1;
        (
            work + spin + QUEUE_LOCK_HOLD + enq.latency + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: core,
            },
        )
    }

    fn on_cookie_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        if self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
        {
            // Nothing was allocated for a cookie, so nothing leaks.
            self.stats.dropped_overflow += 1;
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) = ops::cookie_establish(k, core, at, tuple);
        let q = &self.queues[core.index()];
        let enq = q.enqueue_access(k, core);
        let (_, spin) = self.queues[core.index()].lock.run_locked(
            at + work,
            QUEUE_LOCK_HOLD + enq.latency,
            &mut k.lockstat,
        );
        self.queues[core.index()]
            .items
            .push_back(AcceptItem { conn, req_obj });
        self.stats.enqueued += 1;
        (
            work + spin + QUEUE_LOCK_HOLD + enq.latency + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: core,
            },
        )
    }

    fn rehome(&mut self, k: &mut Kernel, from: CoreId, to: CoreId, at: Cycles) -> (Cycles, u64) {
        let (fi, ti) = (from.index(), to.index());
        if fi == ti || self.queues[fi].items.is_empty() {
            return (0, 0);
        }
        let mut cycles = 0u64;
        let mut moved = 0u64;
        // The live core pulls every migrated line: unlink from the dead
        // clone, link onto its own. The target may temporarily exceed its
        // local split — the cap is enforced at enqueue time only, as in
        // Linux.
        while let Some(item) = self.queues[fi].items.pop_front() {
            let deq = self.queues[fi].dequeue_access(k, to);
            let enq = self.queues[ti].enqueue_access(k, to);
            self.queues[ti].items.push_back(item);
            cycles += deq.latency + enq.latency;
            moved += 1;
        }
        // Both queue locks are taken once for the whole splice.
        let (_, w1) = self.queues[fi]
            .lock
            .run_locked(at, QUEUE_LOCK_HOLD, &mut k.lockstat);
        let o1 = k.lockstat.op_overhead();
        let (_, w2) = self.queues[ti]
            .lock
            .run_locked(at, QUEUE_LOCK_HOLD, &mut k.lockstat);
        let o2 = k.lockstat.op_overhead();
        (cycles + w1 + w2 + 2 * QUEUE_LOCK_HOLD + o1 + o2, moved)
    }

    fn try_accept(&mut self, k: &mut Kernel, core: CoreId, at: Cycles) -> AcceptOutcome {
        // Round-robin over all clones, starting at this core's cursor.
        let n = self.cfg.n_cores;
        let start = self.rr[core.index()];
        let mut scanned = 0;
        for i in 0..n {
            let qi = (start + i) % n;
            if self.queues[qi].items.is_empty() {
                scanned += 1;
                continue;
            }
            self.rr[core.index()] = (qi + 1) % n;
            let deq = self.queues[qi].dequeue_access(k, core);
            let (_, spin) =
                self.queues[qi]
                    .lock
                    .run_locked(at, QUEUE_LOCK_HOLD + deq.latency, &mut k.lockstat);
            let item = self.queues[qi].items.pop_front().expect("non-empty");
            let stolen = qi != core.index();
            if stolen {
                self.stats.accepts_stolen += 1;
            } else {
                self.stats.accepts_local += 1;
            }
            return AcceptOutcome::Accepted {
                item,
                cycles: spin
                    + QUEUE_LOCK_HOLD
                    + deq.latency
                    + scanned as u64 * 40
                    + k.lockstat.op_overhead(),
                stolen,
                resume_at: at,
            };
        }
        AcceptOutcome::Empty {
            cycles: EMPTY_SCAN_COST + n as u64 * 40,
            resume_at: at,
        }
    }

    fn wake_candidates(&mut self, queue_core: CoreId, out: &mut Vec<CoreId>) {
        // Linux's wait queue is FIFO across cores: the woken waiter sits
        // on an arbitrary core — modelled as a rotating cursor with no
        // locality preference.
        let _ = queue_core;
        out.clear();
        let n = self.cfg.n_cores;
        self.wake_rr = (self.wake_rr + 1) % n;
        for i in 0..n {
            out.push(CoreId(((self.wake_rr + i) % n) as u16));
        }
    }

    fn backlogged(&self, core: CoreId) -> bool {
        // Mirror `on_ack`'s drop decision exactly: the local split *or*
        // the socket-wide backlog. Reporting only the local queue would
        // let the fault plane admit SYNs into handshakes the global cap
        // is guaranteed to drop.
        self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
    }

    fn queued_on(&self, core: CoreId) -> usize {
        self.queues[core.index()].items.len()
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.items.len()).sum()
    }

    fn stats(&self) -> ListenStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup(n: usize) -> (FineAccept, Kernel) {
        let mut k = Kernel::new(Machine::amd48());
        let s = FineAccept::new(&mut k, ListenConfig::paper(n));
        (s, k)
    }

    fn tuple(port: u16) -> FlowTuple {
        FlowTuple::client(1, port, 80)
    }

    fn establish(s: &mut FineAccept, k: &mut Kernel, core: CoreId, port: u16, at: Cycles) {
        s.on_syn(k, core, at, tuple(port));
        let (_, out) = s.on_ack(k, core, at + 1000, tuple(port));
        assert!(matches!(out, AckOutcome::Enqueued { .. }));
    }

    #[test]
    fn enqueue_goes_to_local_clone() {
        let (mut s, mut k) = setup(4);
        establish(&mut s, &mut k, CoreId(2), 7, 0);
        assert_eq!(s.queued_on(CoreId(2)), 1);
        assert_eq!(s.queued_on(CoreId(0)), 0);
    }

    #[test]
    fn round_robin_disperses_accepts() {
        let (mut s, mut k) = setup(4);
        // Fill every clone's queue.
        for c in 0..4u16 {
            for p in 0..3u16 {
                establish(
                    &mut s,
                    &mut k,
                    CoreId(c),
                    c * 100 + p,
                    u64::from(c * 100 + p) * 10_000,
                );
            }
        }
        // Core 0 accepts repeatedly: items come from different clones.
        let mut sources = Vec::new();
        for i in 0..4 {
            match s.try_accept(&mut k, CoreId(0), 10_000_000 + i * 100_000) {
                AcceptOutcome::Accepted { item, .. } => {
                    sources.push(k.conn(item.conn).rx_core);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let distinct: std::collections::BTreeSet<_> = sources.iter().collect();
        assert!(distinct.len() >= 3, "round robin spreads: {sources:?}");
    }

    #[test]
    fn no_lock_bottleneck_across_cores() {
        let (mut s, mut k) = setup(8);
        // Concurrent SYNs on distinct cores do not wait on one another.
        let durations: Vec<Cycles> = (0..8)
            .map(|i| s.on_syn(&mut k, CoreId(i), 0, tuple(i)))
            .collect();
        let min = durations.iter().min().unwrap();
        let max = durations.iter().max().unwrap();
        assert!(*max < min * 2, "no serialization expected: {durations:?}");
    }

    #[test]
    fn per_queue_overflow() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(2);
        cfg.max_backlog = 4; // 2 per core
        let mut s = FineAccept::new(&mut k, cfg);
        let mut t = 0;
        for p in 0..3u16 {
            s.on_syn(&mut k, CoreId(0), t, tuple(p));
            t += 1_000_000;
            let (_, out) = s.on_ack(&mut k, CoreId(0), t, tuple(p));
            t += 1_000_000;
            if p < 2 {
                assert!(matches!(out, AckOutcome::Enqueued { .. }));
            } else {
                assert_eq!(out, AckOutcome::DroppedOverflow);
            }
        }
    }

    #[test]
    fn global_backlog_caps_total_even_with_generous_splits() {
        // More cores than backlog slots: the per-core split rounds up to
        // 1, so only the socket-wide check keeps the total at the cap.
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(4);
        cfg.max_backlog = 2;
        let mut s = FineAccept::new(&mut k, cfg);
        let mut t = 0;
        let mut admitted = 0;
        for c in 0..4u16 {
            s.on_syn(&mut k, CoreId(c), t, tuple(c));
            t += 1_000_000;
            let (_, out) = s.on_ack(&mut k, CoreId(c), t, tuple(c));
            t += 1_000_000;
            if matches!(out, AckOutcome::Enqueued { .. }) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2);
        assert_eq!(s.total_queued(), 2);
        assert_eq!(s.stats().dropped_overflow, 2);
        assert!(k.reqs.is_empty(), "dropped requests must not leak");
    }

    #[test]
    fn rehome_moves_a_dead_cores_queue() {
        let (mut s, mut k) = setup(4);
        for p in 0..3u16 {
            establish(&mut s, &mut k, CoreId(1), p, u64::from(p) * 1_000_000);
        }
        establish(&mut s, &mut k, CoreId(2), 50, 10_000_000);
        let before = s.total_queued();
        let (cycles, moved) = s.rehome(&mut k, CoreId(1), CoreId(3), 20_000_000);
        assert_eq!(moved, 3);
        assert!(cycles > 0);
        assert_eq!(s.queued_on(CoreId(1)), 0);
        assert_eq!(s.queued_on(CoreId(3)), 3);
        assert_eq!(s.total_queued(), before, "re-homing conserves items");
        // Idempotent once empty.
        assert_eq!(s.rehome(&mut k, CoreId(1), CoreId(3), 21_000_000), (0, 0));
    }

    #[test]
    fn cookie_ack_enqueues_locally() {
        let (mut s, mut k) = setup(4);
        let (_, out) = s.on_cookie_ack(&mut k, CoreId(2), 0, tuple(9));
        assert!(matches!(
            out,
            AckOutcome::Enqueued { queue_core, .. } if queue_core == CoreId(2)
        ));
        assert_eq!(s.queued_on(CoreId(2)), 1);
        assert!(k.reqs.is_empty());
    }

    #[test]
    fn empty_everywhere() {
        let (mut s, mut k) = setup(4);
        assert!(matches!(
            s.try_accept(&mut k, CoreId(1), 0),
            AcceptOutcome::Empty { .. }
        ));
    }
}
