//! Stock-Accept: the unmodified Linux listen socket (§2.1).
//!
//! One request hash table and one accept queue, both protected by a single
//! per-port socket lock. Softirq-context users (SYN and ACK processing)
//! spin for the lock; syscall-context users (`accept()`) sleep on it
//! ("mutex mode"). Only one core at a time can make progress on incoming
//! connections for the port — the scalability collapse of Figure 2.

use crate::listen::{
    AcceptItem, AcceptOutcome, AckOutcome, CloneQueue, ListenConfig, ListenSocket, ListenStats,
};
use mem::layout::FieldTag;
use metrics::lockstat::LockClass;
use nic::FlowTuple;
use sim::lock::TimelineLock;
use sim::time::Cycles;
use sim::topology::CoreId;
use tcp::{ops, Kernel};

/// Hold time of the listen lock for the dequeue part of `accept()`.
const ACCEPT_DEQUEUE_HOLD: Cycles = 2_500;
/// Longest mutex-mode wait an `accept()` will reserve before giving up
/// and going back to sleep (a later enqueue re-wakes it). An unbounded
/// reservation would mark the sleeping task's core busy arbitrarily far
/// into the future.
const MUTEX_WAIT_CAP: Cycles = 240_000; // 100 us
/// Cycles spent discovering an empty queue under the lock.
const EMPTY_SCAN_COST: Cycles = 600;

/// The stock Linux listen socket.
#[derive(Debug)]
pub struct StockAccept {
    cfg: ListenConfig,
    queue: CloneQueue,
    lock: TimelineLock,
    stats: ListenStats,
    /// FIFO wait-queue cursor: successive wakeups rotate through cores.
    wake_rr: usize,
}

impl StockAccept {
    /// Creates the socket with its single queue homed on core 0.
    pub fn new(k: &mut Kernel, cfg: ListenConfig) -> Self {
        Self {
            cfg,
            queue: CloneQueue::new(k, CoreId(0)),
            lock: TimelineLock::new(LockClass::ListenSocket),
            stats: ListenStats::default(),
            wake_rr: 0,
        }
    }

    /// The lock-word line bounces between every core that takes the lock.
    fn touch_lock_word(&self, k: &mut Kernel, core: CoreId) -> mem::cache::Access {
        k.cache
            .access_tagged(core, self.queue.sock, FieldTag::GlobalNode, true)
    }
}

impl ListenSocket for StockAccept {
    fn name(&self) -> &'static str {
        "stock"
    }

    fn on_syn(&mut self, k: &mut Kernel, core: CoreId, at: Cycles, tuple: FlowTuple) -> Cycles {
        // Softirq context: spin for the socket lock, then do all request
        // processing under it.
        let lock_word = self.touch_lock_word(k, core);
        let acq = self.lock.lock_spin(at);
        let (work, _req) = ops::syn(k, core, acq.entry, tuple, false);
        let hold = work + lock_word.latency;
        self.lock.unlock(acq, hold, 0, &mut k.lockstat);
        acq.spin_wait + hold + k.lockstat.op_overhead()
    }

    fn on_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        let lock_word = self.touch_lock_word(k, core);
        let acq = self.lock.lock_spin(at);
        let Some(req) = k.reqs.lookup(&tuple) else {
            self.lock.unlock(acq, EMPTY_SCAN_COST, 0, &mut k.lockstat);
            return (acq.spin_wait + EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        };
        if self.queue.items.len() >= self.cfg.max_backlog {
            // Queue overflow: Linux drops the ACK; the request eventually
            // times out. We reclaim it immediately.
            if let Some(r) = k.reqs.remove(req) {
                k.slab.free(core, r.obj, &mut k.cache);
            }
            self.stats.dropped_overflow += 1;
            self.lock.unlock(acq, EMPTY_SCAN_COST, 0, &mut k.lockstat);
            return (acq.spin_wait + EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) =
            ops::ack_establish(k, core, acq.entry, req, false).expect("request present");
        let enq = self.queue.enqueue_access(k, core);
        self.queue.items.push_back(AcceptItem { conn, req_obj });
        self.stats.enqueued += 1;
        let hold = work + lock_word.latency + enq.latency;
        self.lock.unlock(acq, hold, 0, &mut k.lockstat);
        (
            acq.spin_wait + hold + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: CoreId(0),
            },
        )
    }

    fn on_cookie_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        let lock_word = self.touch_lock_word(k, core);
        let acq = self.lock.lock_spin(at);
        if self.queue.items.len() >= self.cfg.max_backlog {
            // A valid cookie met a full queue: nothing was allocated, so
            // nothing leaks; the client retries or times out.
            self.stats.dropped_overflow += 1;
            self.lock.unlock(acq, EMPTY_SCAN_COST, 0, &mut k.lockstat);
            return (acq.spin_wait + EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) = ops::cookie_establish(k, core, acq.entry, tuple);
        let enq = self.queue.enqueue_access(k, core);
        self.queue.items.push_back(AcceptItem { conn, req_obj });
        self.stats.enqueued += 1;
        let hold = work + lock_word.latency + enq.latency;
        self.lock.unlock(acq, hold, 0, &mut k.lockstat);
        (
            acq.spin_wait + hold + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: CoreId(0),
            },
        )
    }

    fn try_accept(&mut self, k: &mut Kernel, core: CoreId, at: Cycles) -> AcceptOutcome {
        // Syscall context takes the lock in mutex mode: the task sleeps
        // (idle) until its FIFO turn, then runs its critical section.
        let lock_word = self.touch_lock_word(k, core);
        let reservation = self.lock.lock_spin(at);
        let mutex_wait = reservation.spin_wait;
        let resume_at = reservation.entry;
        if mutex_wait > MUTEX_WAIT_CAP {
            // Give the slot back (zero hold leaves the timeline unchanged)
            // and report empty; the task sleeps and a later wakeup retries.
            let acq = sim::lock::Acquired {
                entry: resume_at,
                spin_wait: 0,
            };
            self.lock
                .unlock(acq, 0, mutex_wait.min(MUTEX_WAIT_CAP), &mut k.lockstat);
            return AcceptOutcome::Empty {
                cycles: lock_word.latency + k.lockstat.op_overhead(),
                resume_at: at,
            };
        }
        let acq = sim::lock::Acquired {
            entry: resume_at,
            spin_wait: 0,
        };
        if let Some(item) = self.queue.items.pop_front() {
            let deq = self.queue.dequeue_access(k, core);
            let hold = ACCEPT_DEQUEUE_HOLD + deq.latency + lock_word.latency;
            self.lock.unlock(acq, hold, mutex_wait, &mut k.lockstat);
            self.stats.accepts_local += 1;
            AcceptOutcome::Accepted {
                item,
                cycles: hold + k.lockstat.op_overhead(),
                stolen: false,
                resume_at,
            }
        } else {
            self.lock
                .unlock(acq, EMPTY_SCAN_COST, mutex_wait, &mut k.lockstat);
            AcceptOutcome::Empty {
                cycles: EMPTY_SCAN_COST + lock_word.latency,
                resume_at,
            }
        }
    }

    fn wake_candidates(&mut self, queue_core: CoreId, out: &mut Vec<CoreId>) {
        // One global queue with a FIFO wait queue: successive wakeups hit
        // whichever waiter has slept longest — effectively rotating
        // through the cores, with no locality preference.
        let _ = queue_core;
        out.clear();
        let n = self.cfg.n_cores;
        self.wake_rr = (self.wake_rr + 1) % n;
        for i in 0..n {
            out.push(CoreId(((self.wake_rr + i) % n) as u16));
        }
    }

    fn backlogged(&self, _core: CoreId) -> bool {
        self.queue.items.len() >= self.cfg.max_backlog
    }

    fn queued_on(&self, _core: CoreId) -> usize {
        self.queue.items.len()
    }

    fn total_queued(&self) -> usize {
        self.queue.items.len()
    }

    fn stats(&self) -> ListenStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup(n_cores: usize) -> (StockAccept, Kernel) {
        let mut k = Kernel::new(Machine::amd48());
        let s = StockAccept::new(&mut k, ListenConfig::paper(n_cores));
        (s, k)
    }

    fn tuple(port: u16) -> FlowTuple {
        FlowTuple::client(1, port, 80)
    }

    #[test]
    fn handshake_and_accept() {
        let (mut s, mut k) = setup(4);
        s.on_syn(&mut k, CoreId(0), 0, tuple(1));
        let (_, out) = s.on_ack(&mut k, CoreId(0), 10_000, tuple(1));
        let AckOutcome::Enqueued { conn, queue_core } = out else {
            panic!("expected enqueue");
        };
        assert_eq!(queue_core, CoreId(0));
        assert_eq!(s.total_queued(), 1);
        match s.try_accept(&mut k, CoreId(2), 20_000_000) {
            AcceptOutcome::Accepted { item, stolen, .. } => {
                assert_eq!(item.conn, conn);
                assert!(!stolen);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.total_queued(), 0);
    }

    #[test]
    fn concurrent_syns_serialize_on_the_lock() {
        let (mut s, mut k) = setup(8);
        // Eight cores all receive SYNs at t = 0: waits stack up.
        let durations: Vec<Cycles> = (0..8)
            .map(|i| s.on_syn(&mut k, CoreId(i), 0, tuple(i)))
            .collect();
        for w in durations.windows(2) {
            assert!(w[1] > w[0], "later SYNs wait longer: {durations:?}");
        }
        // The last core waited for seven predecessors.
        assert!(durations[7] > durations[0] * 5);
    }

    #[test]
    fn accept_sleeps_in_mutex_mode_while_lock_held() {
        let (mut s, mut k) = setup(4);
        s.on_syn(&mut k, CoreId(0), 0, tuple(1));
        // The SYN processing holds the lock for tens of kcycles; an accept
        // arriving mid-hold sleeps until its FIFO turn (idle, not spin).
        match s.try_accept(&mut k, CoreId(1), 10) {
            AcceptOutcome::Empty { resume_at, .. } => assert!(resume_at > 10),
            other => panic!("unexpected {other:?}"),
        }
        // The wait was recorded as mutex-mode (idle) time, not spin.
        k.enable_lockstat();
        s.on_syn(&mut k, CoreId(0), 50_000_000, tuple(2));
        match s.try_accept(&mut k, CoreId(1), 50_000_010) {
            AcceptOutcome::Empty { resume_at, .. } => assert!(resume_at > 50_000_010),
            other => panic!("unexpected {other:?}"),
        }
        let st = k.lockstat.class(metrics::lockstat::LockClass::ListenSocket);
        assert!(st.wait_mutex_cycles > 0);
        assert_eq!(st.wait_spin_cycles, 0);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let (mut s, mut k) = setup(4);
        match s.try_accept(&mut k, CoreId(0), 1_000_000) {
            AcceptOutcome::Empty { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overflow_drops() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(1);
        cfg.max_backlog = 2;
        let mut s = StockAccept::new(&mut k, cfg);
        let mut t = 0;
        for port in 0..3u16 {
            s.on_syn(&mut k, CoreId(0), t, tuple(port));
            t += 1_000_000;
        }
        let mut outcomes = Vec::new();
        for port in 0..3u16 {
            let (_, out) = s.on_ack(&mut k, CoreId(0), t, tuple(port));
            outcomes.push(out);
            t += 1_000_000;
        }
        assert!(matches!(outcomes[0], AckOutcome::Enqueued { .. }));
        assert!(matches!(outcomes[1], AckOutcome::Enqueued { .. }));
        assert_eq!(outcomes[2], AckOutcome::DroppedOverflow);
        assert_eq!(s.stats().dropped_overflow, 1);
        // The dropped request must not leak.
        assert!(k.reqs.is_empty());
    }

    #[test]
    fn cookie_ack_enqueues_without_a_request() {
        let (mut s, mut k) = setup(4);
        let (_, out) = s.on_cookie_ack(&mut k, CoreId(1), 0, tuple(9));
        assert!(matches!(out, AckOutcome::Enqueued { .. }));
        assert_eq!(s.total_queued(), 1);
        assert_eq!(s.stats().enqueued, 1);
        assert!(k.reqs.is_empty());
        assert_eq!(k.live_conns(), 1);
    }

    #[test]
    fn cookie_ack_respects_the_backlog() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(1);
        cfg.max_backlog = 1;
        let mut s = StockAccept::new(&mut k, cfg);
        let (_, a) = s.on_cookie_ack(&mut k, CoreId(0), 0, tuple(1));
        let (_, b) = s.on_cookie_ack(&mut k, CoreId(0), 1_000_000, tuple(2));
        assert!(matches!(a, AckOutcome::Enqueued { .. }));
        assert_eq!(b, AckOutcome::DroppedOverflow);
        assert_eq!(s.stats().dropped_overflow, 1);
        assert_eq!(k.live_conns(), 1, "the dropped cookie allocated nothing");
    }

    #[test]
    fn rehome_is_a_noop_for_the_global_queue() {
        let (mut s, mut k) = setup(4);
        s.on_syn(&mut k, CoreId(0), 0, tuple(1));
        s.on_ack(&mut k, CoreId(0), 10_000, tuple(1));
        let (cycles, moved) = s.rehome(&mut k, CoreId(0), CoreId(1), 20_000);
        assert_eq!((cycles, moved), (0, 0));
        // The queue stays reachable from any core.
        assert!(matches!(
            s.try_accept(&mut k, CoreId(3), 20_000_000),
            AcceptOutcome::Accepted { .. }
        ));
    }

    #[test]
    fn wake_candidates_rotate_through_cores() {
        let (mut s, _k) = setup(4);
        let mut v = Vec::new();
        s.wake_candidates(CoreId(0), &mut v);
        assert_eq!(v, vec![CoreId(1), CoreId(2), CoreId(3), CoreId(0)]);
        // Successive wakeups start at successive cores (FIFO waiters),
        // regardless of the enqueuing core.
        s.wake_candidates(CoreId(0), &mut v);
        assert_eq!(v[0], CoreId(2));
        s.wake_candidates(CoreId(3), &mut v);
        assert_eq!(v[0], CoreId(3));
    }
}
