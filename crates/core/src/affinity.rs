//! Affinity-Accept (§3): local accepts, connection stealing, and
//! flow-group migration.
//!
//! `accept()` preferentially returns connections from the caller's own
//! core's queue, so — since the NIC keeps steering the flow to that same
//! core — all processing for a connection stays local. Two mechanisms
//! counter load imbalance:
//!
//! * **Connection stealing** (§3.3.1): non-busy cores steal from busy
//!   cores, with a 5:1 proportional share between local and stolen
//!   accepts and round-robin victim selection; busy cores never steal.
//! * **Flow-group migration** (§3.3.2): every 100 ms each non-busy core
//!   takes one flow group in the NIC's FDir table from the core it stole
//!   the most connections from, converting sustained stealing back into
//!   local processing.

use crate::busy::BusyTracker;
use crate::listen::{
    AcceptItem, AcceptOutcome, AckOutcome, CloneQueue, ListenConfig, ListenSocket, ListenStats,
};
use nic::packet::RingId;
use nic::FlowTuple;
use sim::time::Cycles;
use sim::topology::CoreId;
use tcp::{ops, Kernel};

/// Hold time of a clone-queue lock for one enqueue/dequeue.
const QUEUE_LOCK_HOLD: Cycles = 700;
/// Cost of scanning an empty queue.
const EMPTY_SCAN_COST: Cycles = 250;
/// Driver-call overhead of one FDir reprogramming beyond the table write.
const MIGRATE_DRIVER_COST: Cycles = 2_000;

/// The affinity-aware listen socket.
#[derive(Debug)]
pub struct AffinityAccept {
    cfg: ListenConfig,
    queues: Vec<CloneQueue>,
    busy: BusyTracker,
    /// Per-core accept counter driving the 5:1 proportional share.
    share_ctr: Vec<u32>,
    /// Per-core round-robin cursor over steal victims.
    last_victim: Vec<usize>,
    /// `steals[stealer][victim]` since the last balance tick.
    steals: Vec<Vec<u64>>,
    /// Rotates which of a victim's flow groups migrates.
    migrate_rotor: usize,
    stats: ListenStats,
}

impl AffinityAccept {
    /// Creates one clone per active core plus the busy tracker.
    pub fn new(k: &mut Kernel, cfg: ListenConfig) -> Self {
        let n = cfg.n_cores;
        let queues = (0..n)
            .map(|i| CloneQueue::new(k, CoreId(i as u16)))
            .collect();
        let busy = BusyTracker::new(
            k,
            n,
            cfg.max_local_queue(),
            cfg.high_watermark,
            cfg.low_watermark,
        );
        Self {
            cfg,
            queues,
            busy,
            share_ctr: vec![0; n],
            last_victim: vec![0; n],
            steals: vec![vec![0; n]; n],
            migrate_rotor: 0,
            stats: ListenStats::default(),
        }
    }

    /// The busy tracker (exposed for tests and diagnostics).
    #[must_use]
    pub fn busy_tracker(&self) -> &BusyTracker {
        &self.busy
    }

    fn dequeue_from(
        &mut self,
        k: &mut Kernel,
        qi: usize,
        core: CoreId,
        at: Cycles,
    ) -> (AcceptItem, Cycles) {
        let deq = self.queues[qi].dequeue_access(k, core);
        let (_, spin) =
            self.queues[qi]
                .lock
                .run_locked(at, QUEUE_LOCK_HOLD + deq.latency, &mut k.lockstat);
        let item = self.queues[qi].items.pop_front().expect("non-empty");
        let len = self.queues[qi].items.len();
        self.busy.reconsider(k, CoreId(qi as u16), len);
        (
            item,
            spin + QUEUE_LOCK_HOLD + deq.latency + k.lockstat.op_overhead(),
        )
    }

    /// Finds the next busy victim with a non-empty queue, round-robin from
    /// this core's cursor (§3.3.1: deterministic order, start one past the
    /// last victim).
    fn next_victim(&self, core: CoreId) -> Option<usize> {
        let n = self.cfg.n_cores;
        let start = (self.last_victim[core.index()] + 1) % n;
        (0..n).map(|i| (start + i) % n).find(|&v| {
            v != core.index()
                && self.busy.is_busy(CoreId(v as u16))
                && !self.queues[v].items.is_empty()
        })
    }

    /// Polling fallback (§3.3.1 "Polling"): before sleeping, scan remote
    /// queues — busy cores first, then non-busy ones. A non-busy victim is
    /// only raided when its queue is clearly backlogged (its own acceptor
    /// would have taken a freshly enqueued connection within one wakeup);
    /// raiding every transiently non-empty queue would destroy the very
    /// affinity the design exists to preserve.
    fn any_remote(&self, core: CoreId) -> Option<usize> {
        let n = self.cfg.n_cores;
        let backlog = (self.cfg.max_local_queue() / 4).max(2);
        let busy_first = (0..n).filter(|&v| {
            v != core.index()
                && self.busy.is_busy(CoreId(v as u16))
                && !self.queues[v].items.is_empty()
        });
        let nonbusy = (0..n).filter(|&v| {
            v != core.index()
                && !self.busy.is_busy(CoreId(v as u16))
                && self.queues[v].items.len() >= backlog
        });
        busy_first.chain(nonbusy).next()
    }
}

impl ListenSocket for AffinityAccept {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn on_syn(&mut self, k: &mut Kernel, core: CoreId, at: Cycles, tuple: FlowTuple) -> Cycles {
        let (cycles, _req) = ops::syn(k, core, at, tuple, true);
        cycles
    }

    fn on_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        let Some(req) = k.reqs.lookup(&tuple) else {
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        };
        // Enforce the local split *and* the socket-wide backlog: the
        // per-core cap rounds up (`max(1)`), so with more cores than
        // backlog slots the local checks alone would over-admit.
        if self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
        {
            if let Some(r) = k.reqs.remove(req) {
                k.slab.free(core, r.obj, &mut k.cache);
            }
            self.stats.dropped_overflow += 1;
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) =
            ops::ack_establish(k, core, at, req, true).expect("request present");
        let enq = self.queues[core.index()].enqueue_access(k, core);
        let (_, spin) = self.queues[core.index()].lock.run_locked(
            at + work,
            QUEUE_LOCK_HOLD + enq.latency,
            &mut k.lockstat,
        );
        self.queues[core.index()]
            .items
            .push_back(AcceptItem { conn, req_obj });
        let len = self.queues[core.index()].items.len();
        self.busy.on_enqueue(k, core, len);
        self.stats.enqueued += 1;
        (
            work + spin + QUEUE_LOCK_HOLD + enq.latency + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: core,
            },
        )
    }

    fn on_cookie_ack(
        &mut self,
        k: &mut Kernel,
        core: CoreId,
        at: Cycles,
        tuple: FlowTuple,
    ) -> (Cycles, AckOutcome) {
        if self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
        {
            // Nothing was allocated for a cookie, so nothing leaks.
            self.stats.dropped_overflow += 1;
            return (EMPTY_SCAN_COST, AckOutcome::DroppedOverflow);
        }
        let (work, conn, req_obj) = ops::cookie_establish(k, core, at, tuple);
        let enq = self.queues[core.index()].enqueue_access(k, core);
        let (_, spin) = self.queues[core.index()].lock.run_locked(
            at + work,
            QUEUE_LOCK_HOLD + enq.latency,
            &mut k.lockstat,
        );
        self.queues[core.index()]
            .items
            .push_back(AcceptItem { conn, req_obj });
        let len = self.queues[core.index()].items.len();
        self.busy.on_enqueue(k, core, len);
        self.stats.enqueued += 1;
        (
            work + spin + QUEUE_LOCK_HOLD + enq.latency + k.lockstat.op_overhead(),
            AckOutcome::Enqueued {
                conn,
                queue_core: core,
            },
        )
    }

    fn rehome(&mut self, k: &mut Kernel, from: CoreId, to: CoreId, at: Cycles) -> (Cycles, u64) {
        let (fi, ti) = (from.index(), to.index());
        if fi == ti || self.queues[fi].items.is_empty() {
            return (0, 0);
        }
        let mut cycles = 0u64;
        let mut moved = 0u64;
        // The live core pulls every migrated line off the dead clone. The
        // target may temporarily exceed its local split — the cap is
        // enforced at enqueue time only, as in Linux.
        while let Some(item) = self.queues[fi].items.pop_front() {
            let deq = self.queues[fi].dequeue_access(k, to);
            let enq = self.queues[ti].enqueue_access(k, to);
            self.queues[ti].items.push_back(item);
            cycles += deq.latency + enq.latency;
            moved += 1;
        }
        let (_, w1) = self.queues[fi]
            .lock
            .run_locked(at, QUEUE_LOCK_HOLD, &mut k.lockstat);
        let o1 = k.lockstat.op_overhead();
        let (_, w2) = self.queues[ti]
            .lock
            .run_locked(at, QUEUE_LOCK_HOLD, &mut k.lockstat);
        let o2 = k.lockstat.op_overhead();
        // The dead core's busy state is stale by definition; update both
        // ends so stealing and wakeups see the new shape immediately.
        self.busy.clear(k, from);
        let len = self.queues[ti].items.len();
        self.busy.on_enqueue(k, to, len);
        (cycles + w1 + w2 + 2 * QUEUE_LOCK_HOLD + o1 + o2, moved)
    }

    fn try_accept(&mut self, k: &mut Kernel, core: CoreId, at: Cycles) -> AcceptOutcome {
        let me = core.index();
        // One read of the busy bit vector tells us every core's status.
        let bitmap_cost = self.busy.read_access(k, core).latency;
        let self_busy = self.busy.is_busy(core);
        let local_len = self.queues[me].items.len();

        // Proportional share: when both local work and busy victims
        // exist, every (ratio+1)-th accept goes remote.
        let ratio = self.cfg.steal_ratio_local;
        if !self_busy && self.cfg.stealing {
            let steal_due = local_len == 0 || self.share_ctr[me] % (ratio + 1) == ratio;
            if steal_due {
                if let Some(v) = self.next_victim(core) {
                    self.last_victim[me] = v;
                    self.share_ctr[me] = self.share_ctr[me].wrapping_add(1);
                    self.steals[me][v] += 1;
                    self.stats.accepts_stolen += 1;
                    let (item, cycles) = self.dequeue_from(k, v, core, at);
                    return AcceptOutcome::Accepted {
                        item,
                        cycles: cycles + bitmap_cost,
                        stolen: true,
                        resume_at: at,
                    };
                }
            }
        }
        if local_len > 0 {
            self.share_ctr[me] = self.share_ctr[me].wrapping_add(1);
            self.stats.accepts_local += 1;
            let (item, cycles) = self.dequeue_from(k, me, core, at);
            return AcceptOutcome::Accepted {
                item,
                cycles: cycles + bitmap_cost,
                stolen: false,
                resume_at: at,
            };
        }
        // Local queue empty: a non-busy core polls the other queues
        // before sleeping (busy cores never steal).
        if !self_busy && self.cfg.stealing {
            if let Some(v) = self.any_remote(core) {
                self.last_victim[me] = v;
                self.steals[me][v] += 1;
                self.stats.accepts_stolen += 1;
                let (item, cycles) = self.dequeue_from(k, v, core, at);
                return AcceptOutcome::Accepted {
                    item,
                    cycles: cycles + bitmap_cost,
                    stolen: true,
                    resume_at: at,
                };
            }
        }
        AcceptOutcome::Empty {
            cycles: EMPTY_SCAN_COST + bitmap_cost,
            resume_at: at,
        }
    }

    fn wake_candidates(&mut self, queue_core: CoreId, out: &mut Vec<CoreId>) {
        // Local waiters first; otherwise any *non-busy* remote (§3.3.1).
        out.clear();
        out.push(queue_core);
        for i in 0..self.cfg.n_cores {
            let c = CoreId(i as u16);
            if c != queue_core && !self.busy.is_busy(c) {
                out.push(c);
            }
        }
    }

    fn wakes_all_pollers(&self) -> bool {
        // Affinity-Accept only wakes threads polling on the local core.
        false
    }

    fn backlogged(&self, core: CoreId) -> bool {
        // Mirror `on_ack`'s drop decision exactly: the local split *or*
        // the socket-wide backlog (see `FineAccept::backlogged`).
        self.queues[core.index()].items.len() >= self.cfg.max_local_queue()
            || self.total_queued() >= self.cfg.max_backlog
    }

    fn queued_on(&self, core: CoreId) -> usize {
        self.queues[core.index()].items.len()
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.items.len()).sum()
    }

    fn balance_tick(
        &mut self,
        _k: &mut Kernel,
        groups: &mut nic::FlowGroupTable,
        _now: Cycles,
    ) -> Vec<(CoreId, Cycles)> {
        if !self.cfg.migration {
            for row in &mut self.steals {
                row.iter_mut().for_each(|c| *c = 0);
            }
            return Vec::new();
        }
        let n = self.cfg.n_cores;
        let mut charged = Vec::new();
        for me in 0..n {
            if self.busy.is_busy(CoreId(me as u16)) {
                // Busy cores do not migrate additional groups to themselves.
                continue;
            }
            let Some((victim, count)) = self.steals[me]
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(v, c)| (v, *c))
            else {
                continue;
            };
            if count == 0 {
                continue;
            }
            let victim_groups = groups.groups_of(RingId(victim as u16));
            if victim_groups.is_empty() {
                continue;
            }
            let g = victim_groups[self.migrate_rotor % victim_groups.len()];
            self.migrate_rotor = self.migrate_rotor.wrapping_add(1);
            let cost = groups.migrate(g, RingId(me as u16)) + MIGRATE_DRIVER_COST;
            self.stats.flow_migrations += 1;
            charged.push((CoreId(me as u16), cost));
        }
        for row in &mut self.steals {
            row.iter_mut().for_each(|c| *c = 0);
        }
        charged
    }

    fn stats(&self) -> ListenStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup(n: usize) -> (AffinityAccept, Kernel) {
        let mut k = Kernel::new(Machine::amd48());
        let s = AffinityAccept::new(&mut k, ListenConfig::paper(n));
        (s, k)
    }

    fn tuple(port: u16) -> FlowTuple {
        FlowTuple::client(1, port, 80)
    }

    fn establish(s: &mut AffinityAccept, k: &mut Kernel, core: CoreId, port: u16, at: Cycles) {
        s.on_syn(k, core, at, tuple(port));
        let (_, out) = s.on_ack(k, core, at + 1000, tuple(port));
        assert!(matches!(out, AckOutcome::Enqueued { .. }), "{out:?}");
    }

    #[test]
    fn accept_prefers_local_queue() {
        let (mut s, mut k) = setup(4);
        establish(&mut s, &mut k, CoreId(1), 1, 0);
        establish(&mut s, &mut k, CoreId(2), 2, 10_000);
        // Core 2 accepts its own connection even though core 1 has one.
        match s.try_accept(&mut k, CoreId(2), 1_000_000) {
            AcceptOutcome::Accepted { item, stolen, .. } => {
                assert!(!stolen);
                assert_eq!(k.conn(item.conn).rx_core, CoreId(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_share_stealing_from_non_busy_victims() {
        // With local work available, the proportional-share steal path
        // only fires for *busy* victims; a core with its own work never
        // steals from a non-busy one, even after many accepts.
        let (mut s, mut k) = setup(4);
        let mut at = 0u64;
        for p in 0..30u16 {
            establish(&mut s, &mut k, CoreId(0), p, at);
            at += 50_000;
        }
        for p in 100..130u16 {
            establish(&mut s, &mut k, CoreId(3), p, at);
            at += 50_000;
        }
        assert!(!s.busy_tracker().is_busy(CoreId(0)));
        for _ in 0..30 {
            at += 50_000;
            match s.try_accept(&mut k, CoreId(3), at) {
                AcceptOutcome::Accepted { stolen, .. } => assert!(!stolen),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn empty_local_polls_backlogged_remote_queues() {
        // The polling path: local empty, a remote (non-busy) queue is
        // clearly backlogged — take from it rather than sleeping.
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(4);
        cfg.max_backlog = 32; // max local 8, backlog threshold 2
        let mut s = AffinityAccept::new(&mut k, cfg);
        establish(&mut s, &mut k, CoreId(0), 9, 0);
        // One pending connection on a non-busy core is NOT raided…
        match s.try_accept(&mut k, CoreId(3), 1_000_000) {
            AcceptOutcome::Empty { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        // …but a backlog is.
        establish(&mut s, &mut k, CoreId(0), 10, 10_000);
        establish(&mut s, &mut k, CoreId(0), 11, 20_000);
        match s.try_accept(&mut k, CoreId(3), 2_000_000) {
            AcceptOutcome::Accepted { stolen, .. } => assert!(stolen),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn proportional_share_is_5_to_1_under_busy_victim() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(2);
        cfg.max_backlog = 16; // max local queue 8, high watermark 6
        let mut s = AffinityAccept::new(&mut k, cfg);
        let mut at = 0u64;
        let mut port = 0u16;
        fn fill(s: &mut AffinityAccept, k: &mut Kernel, port: &mut u16, at: &mut u64) {
            // Keep both queues topped up; core 1 over its high watermark.
            while s.queued_on(CoreId(1)) < 7 {
                establish(s, k, CoreId(1), *port, *at);
                *port += 1;
                *at += 100_000;
            }
            while s.queued_on(CoreId(0)) < 4 {
                establish(s, k, CoreId(0), *port, *at);
                *port += 1;
                *at += 100_000;
            }
        }
        fill(&mut s, &mut k, &mut port, &mut at);
        assert!(s.busy_tracker().is_busy(CoreId(1)));
        let (mut local, mut stolen) = (0u32, 0u32);
        for _ in 0..60 {
            fill(&mut s, &mut k, &mut port, &mut at);
            at += 100_000;
            match s.try_accept(&mut k, CoreId(0), at) {
                AcceptOutcome::Accepted { stolen: st, .. } => {
                    if st {
                        stolen += 1;
                    } else {
                        local += 1;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(local, 50);
        assert_eq!(stolen, 10);
    }

    #[test]
    fn busy_cores_never_steal() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(2);
        cfg.max_backlog = 8; // max local 4, high watermark 3
        let mut s = AffinityAccept::new(&mut k, cfg);
        // Make both cores busy.
        let mut at = 0;
        let mut port = 0;
        for c in 0..2u16 {
            for _ in 0..4 {
                establish(&mut s, &mut k, CoreId(c), port, at);
                port += 1;
                at += 10_000;
            }
        }
        assert!(s.busy_tracker().is_busy(CoreId(0)));
        // Drain core 0's local queue; once empty it must NOT steal from
        // busy core 1.
        for _ in 0..4 {
            match s.try_accept(&mut k, CoreId(0), at) {
                AcceptOutcome::Accepted { stolen, .. } => assert!(!stolen),
                other => panic!("unexpected {other:?}"),
            }
            at += 10_000;
        }
        assert!(s.busy_tracker().is_busy(CoreId(0)), "EWMA keeps it busy");
        match s.try_accept(&mut k, CoreId(0), at) {
            AcceptOutcome::Empty { .. } => {}
            other => panic!("busy core stole: {other:?}"),
        }
    }

    #[test]
    fn conservation_no_connection_lost_or_duplicated() {
        let (mut s, mut k) = setup(4);
        let mut at = 0;
        for p in 0..40u16 {
            establish(&mut s, &mut k, CoreId(p % 4), p, at);
            at += 50_000;
        }
        let mut accepted = std::collections::BTreeSet::new();
        loop {
            let mut progress = false;
            for c in 0..4u16 {
                if let AcceptOutcome::Accepted { item, .. } = s.try_accept(&mut k, CoreId(c), at) {
                    assert!(accepted.insert(item.conn), "duplicate {:?}", item.conn);
                    progress = true;
                }
                at += 10_000;
            }
            if !progress {
                break;
            }
        }
        assert_eq!(accepted.len(), 40);
        assert_eq!(s.total_queued(), 0);
    }

    #[test]
    fn flow_group_migration_moves_one_group_per_tick() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(2);
        cfg.max_backlog = 16;
        let mut s = AffinityAccept::new(&mut k, cfg);
        let mut groups = nic::FlowGroupTable::new(2, 64);
        // Core 1 busy, core 0 steals a few times.
        let mut at = 0;
        for port in 0..7u16 {
            establish(&mut s, &mut k, CoreId(1), port, at);
            at += 10_000;
        }
        assert!(s.busy_tracker().is_busy(CoreId(1)));
        for _ in 0..3 {
            match s.try_accept(&mut k, CoreId(0), at) {
                AcceptOutcome::Accepted { stolen, .. } => assert!(stolen),
                other => panic!("unexpected {other:?}"),
            }
            at += 10_000;
        }
        let before = groups.group_counts(2);
        let charged = s.balance_tick(&mut k, &mut groups, at);
        assert_eq!(charged.len(), 1);
        assert_eq!(charged[0].0, CoreId(0));
        let after = groups.group_counts(2);
        assert_eq!(after[0], before[0] + 1);
        assert_eq!(after[1], before[1] - 1);
        assert_eq!(s.stats().flow_migrations, 1);
        // Steal counts reset: a second tick with no new steals migrates
        // nothing.
        assert!(s.balance_tick(&mut k, &mut groups, at).is_empty());
    }

    #[test]
    fn rehome_moves_queue_and_clears_busy_state() {
        let mut k = Kernel::new(Machine::amd48());
        let mut cfg = ListenConfig::paper(4);
        cfg.max_backlog = 32; // max local 8, high watermark 6
        let mut s = AffinityAccept::new(&mut k, cfg);
        let mut at = 0;
        for p in 0..7u16 {
            establish(&mut s, &mut k, CoreId(1), p, at);
            at += 10_000;
        }
        assert!(s.busy_tracker().is_busy(CoreId(1)));
        let (cycles, moved) = s.rehome(&mut k, CoreId(1), CoreId(2), at);
        assert_eq!(moved, 7);
        assert!(cycles > 0);
        assert_eq!(s.queued_on(CoreId(1)), 0);
        assert_eq!(s.queued_on(CoreId(2)), 7);
        assert!(!s.busy_tracker().is_busy(CoreId(1)), "dead core unmarked");
        // The target inherited the backlog and its busy status reflects it.
        assert!(s.busy_tracker().is_busy(CoreId(2)));
        // Every re-homed connection is still acceptable.
        let mut got = 0;
        while let AcceptOutcome::Accepted { .. } = s.try_accept(&mut k, CoreId(2), at) {
            got += 1;
            at += 10_000;
        }
        assert_eq!(got, 7);
    }

    #[test]
    fn cookie_ack_enqueues_locally_and_tracks_busy() {
        let (mut s, mut k) = setup(4);
        let (_, out) = s.on_cookie_ack(&mut k, CoreId(1), 0, tuple(9));
        assert!(matches!(
            out,
            AckOutcome::Enqueued { queue_core, .. } if queue_core == CoreId(1)
        ));
        assert_eq!(s.queued_on(CoreId(1)), 1);
        assert!(k.reqs.is_empty());
    }

    #[test]
    fn wake_candidates_local_then_non_busy() {
        let (mut s, _k) = setup(4);
        let mut v = Vec::new();
        s.wake_candidates(CoreId(2), &mut v);
        assert_eq!(v[0], CoreId(2));
        assert_eq!(v.len(), 4); // all non-busy initially
        assert!(!s.wakes_all_pollers());
    }
}
