//! The per-run kernel context.
//!
//! One [`Kernel`] instance bundles everything a simulated kernel run needs:
//! the cache-coherence model, the slab allocator, the lock profiler, the
//! performance counters, the connection table, and the global request and
//! established hash tables. The listen-socket implementations and the
//! application runner operate on `&mut Kernel`.

use crate::conn::{Conn, ConnId};
use crate::costs::EntryCost;
use crate::est::EstTable;
use crate::req::ReqTable;
use mem::cache::Access;
use mem::{CacheModel, DataType, ObjId, SlabAllocator};
use metrics::lockstat::LockStat;
use metrics::PerfCounters;
use nic::FlowTuple;
use sim::fastmap::FastMap;
use sim::time::Cycles;
use sim::topology::{CoreId, Machine};

/// Cache-model objects backing one application task (process or thread):
/// its `task_struct` and its kernel stack.
#[derive(Debug, Clone, Copy)]
pub struct TaskObjs {
    /// The `task_struct`.
    pub ts: ObjId,
    /// The kernel stack (`slab:size-16384`).
    pub stack: ObjId,
    /// The task's poll wait-queue entry (`slab:size-192`).
    pub waitq: ObjId,
}

/// Default bucket counts for the global hash tables.
pub const REQ_TABLE_BUCKETS: usize = 4096;
/// Established table buckets (Linux sizes this from memory; 64K chains
/// keep lookups O(1) at the paper's connection counts).
pub const EST_TABLE_BUCKETS: usize = 65_536;

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    /// Machine topology and latencies.
    pub machine: Machine,
    /// The coherence cost model (owns DProf).
    pub cache: CacheModel,
    /// Per-core object pools.
    pub slab: SlabAllocator,
    /// The `lock_stat` profiler (disabled unless Table 2 is being run).
    pub lockstat: LockStat,
    /// Per-entry performance counters (Table 3).
    pub perf: PerfCounters,
    /// The global established-connections table.
    pub est: EstTable,
    /// The shared request hash table.
    pub reqs: ReqTable,
    conns: FastMap<u64, Conn>,
    next_conn: u64,
    conns_removed: u64,
    /// Static-content `file` objects (the served file set).
    pub files: Vec<ObjId>,
    /// Total user-space cycles spent (application request processing).
    pub user_cycles: u64,
    /// Completed HTTP requests (mirrors `perf.requests`).
    pub requests_done: u64,
}

impl Kernel {
    /// Creates a kernel for `machine` with empty tables and the
    /// paper-faithful object layout.
    #[must_use]
    pub fn new(machine: Machine) -> Self {
        Self::new_with_layout(machine, mem::LayoutVariant::Paper)
    }

    /// Creates a kernel whose cache model places objects with `variant`
    /// field layouts (the packed variant changes charged latencies, so it
    /// is never the default).
    #[must_use]
    pub fn new_with_layout(machine: Machine, variant: mem::LayoutVariant) -> Self {
        let n_cores = machine.n_cores;
        let mut cache = CacheModel::new_with_layout(machine.clone(), variant);
        let est = EstTable::new(EST_TABLE_BUCKETS, &mut cache);
        let reqs = ReqTable::new(REQ_TABLE_BUCKETS, &mut cache);
        Self {
            machine,
            cache,
            slab: SlabAllocator::new(n_cores),
            lockstat: LockStat::disabled(),
            perf: PerfCounters::new(),
            est,
            reqs,
            conns: FastMap::default(),
            next_conn: 1,
            conns_removed: 0,
            files: Vec::new(),
            user_cycles: 0,
            requests_done: 0,
        }
    }

    /// Enables the `lock_stat` profiler (Table 2 runs).
    pub fn enable_lockstat(&mut self) {
        self.lockstat = LockStat::enabled();
    }

    /// Enables the DProf profiler (Table 3/4, Figure 4 runs).
    pub fn enable_dprof(&mut self) {
        self.cache.dprof = mem::DProf::enabled();
    }

    /// Enables the dprof-v2 per-cacheline ledger (wasted-bytes reports).
    /// Independent of [`Kernel::enable_dprof`]; both may be on at once.
    pub fn enable_dprof_v2(&mut self) {
        self.cache.dprof.enable_v2();
    }

    /// Allocates the static file set served by the web server, spread
    /// round-robin over the machine's cores (and hence DRAM nodes).
    pub fn init_files(&mut self, n: usize) {
        self.files = (0..n)
            .map(|i| {
                let core = CoreId((i % self.machine.n_cores) as u16);
                self.cache.alloc(DataType::File, core)
            })
            .collect();
    }

    /// Allocates the cache-model objects for one application task homed on
    /// `core`.
    pub fn new_task_objs(&mut self, core: CoreId) -> TaskObjs {
        TaskObjs {
            ts: self.cache.alloc(DataType::TaskStruct, core),
            stack: self.cache.alloc(DataType::Slab16384, core),
            waitq: self.cache.alloc(DataType::Slab192, core),
        }
    }

    /// Registers a new established connection.
    pub fn new_conn(&mut self, tuple: FlowTuple, sock: ObjId, rx_core: CoreId) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.conns.insert(id.0, Conn::new(id, tuple, sock, rx_core));
        id
    }

    /// Immutable access to a connection.
    ///
    /// # Panics
    ///
    /// Panics if the connection does not exist.
    #[must_use]
    pub fn conn(&self, id: ConnId) -> &Conn {
        &self.conns[&id.0]
    }

    /// Mutable access to a connection.
    ///
    /// # Panics
    ///
    /// Panics if the connection does not exist.
    pub fn conn_mut(&mut self, id: ConnId) -> &mut Conn {
        self.conns.get_mut(&id.0).expect("live connection")
    }

    /// Whether a connection is still registered.
    #[must_use]
    pub fn has_conn(&self, id: ConnId) -> bool {
        self.conns.contains_key(&id.0)
    }

    /// Removes a closed connection from the table.
    pub fn remove_conn(&mut self, id: ConnId) -> Option<Conn> {
        let removed = self.conns.remove(&id.0);
        if removed.is_some() {
            self.conns_removed += 1;
        }
        removed
    }

    /// Number of live connections.
    #[must_use]
    pub fn live_conns(&self) -> usize {
        self.conns.len()
    }

    /// Total connections ever registered via [`Kernel::new_conn`]; the
    /// conservation audit balances this against removals + live.
    #[must_use]
    pub fn conns_created(&self) -> u64 {
        self.next_conn - 1
    }

    /// Total connections ever removed via [`Kernel::remove_conn`].
    #[must_use]
    pub fn conns_removed(&self) -> u64 {
        self.conns_removed
    }

    /// Split-borrow helper used by the data-path ops: the connection map
    /// and the rest of the kernel, simultaneously mutable.
    pub fn split(&mut self) -> (&mut FastMap<u64, Conn>, KernelParts<'_>) {
        (
            &mut self.conns,
            KernelParts {
                machine: &self.machine,
                cache: &mut self.cache,
                slab: &mut self.slab,
                lockstat: &mut self.lockstat,
                perf: &mut self.perf,
                est: &mut self.est,
                reqs: &mut self.reqs,
                user_cycles: &mut self.user_cycles,
            },
        )
    }

    /// Charges one entry-point invocation with the given tracked-access
    /// cost; returns the invocation's total cycles.
    pub fn charge(&mut self, ec: EntryCost, tracked: Access) -> Cycles {
        charge_parts(&self.machine, &mut self.perf, ec, tracked)
    }

    /// Resets measurement state (counters, lock stats, user cycles) while
    /// keeping connections and caches warm — called between the warmup and
    /// measurement phases of a run.
    pub fn reset_measurement(&mut self) {
        self.perf = PerfCounters::new();
        self.lockstat.clear();
        self.user_cycles = 0;
        self.requests_done = 0;
    }
}

/// Mutable views of the kernel's parts minus the connection table (see
/// [`Kernel::split`]).
#[derive(Debug)]
pub struct KernelParts<'a> {
    /// Machine topology.
    pub machine: &'a Machine,
    /// Cache model.
    pub cache: &'a mut CacheModel,
    /// Slab pools.
    pub slab: &'a mut SlabAllocator,
    /// Lock profiler.
    pub lockstat: &'a mut LockStat,
    /// Perf counters.
    pub perf: &'a mut PerfCounters,
    /// Established table.
    pub est: &'a mut EstTable,
    /// Request table.
    pub reqs: &'a mut ReqTable,
    /// User-cycle accumulator.
    pub user_cycles: &'a mut u64,
}

/// Charges an entry invocation against explicit parts (used by the ops
/// layer under split borrows).
pub fn charge_parts(
    machine: &Machine,
    perf: &mut PerfCounters,
    ec: EntryCost,
    tracked: Access,
) -> Cycles {
    let cycles = ec.instr + ec.extra_cycles + ec.base_misses * machine.lat.ram + tracked.latency;
    perf.charge(
        ec.entry,
        cycles,
        ec.instr,
        ec.base_misses + tracked.l2_misses,
    );
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;
    use metrics::perf::KernelEntry;

    #[test]
    fn charge_accumulates_counters() {
        let mut k = Kernel::new(Machine::amd48());
        let tracked = Access {
            latency: 920,
            l2_misses: 2,
        };
        let cyc = k.charge(costs::SYS_READ, tracked);
        assert_eq!(
            cyc,
            costs::SYS_READ.instr
                + costs::SYS_READ.extra_cycles
                + costs::SYS_READ.base_misses * 120
                + 920
        );
        let e = k.perf.entry(KernelEntry::SysRead);
        assert_eq!(e.calls, 1);
        assert_eq!(e.l2_misses, costs::SYS_READ.base_misses + 2);
    }

    #[test]
    fn conn_registry_roundtrip() {
        let mut k = Kernel::new(Machine::amd48());
        let sock = k.cache.alloc(DataType::TcpSock, CoreId(0));
        let id = k.new_conn(FlowTuple::client(1, 2, 80), sock, CoreId(0));
        assert!(k.has_conn(id));
        assert_eq!(k.live_conns(), 1);
        k.conn_mut(id).app_core = Some(CoreId(0));
        assert!(k.conn(id).has_affinity());
        assert!(k.remove_conn(id).is_some());
        assert!(!k.has_conn(id));
    }

    #[test]
    fn init_files_allocates_tracked_objects() {
        let mut k = Kernel::new(Machine::amd48());
        let before = k.cache.live_objects();
        k.init_files(100);
        assert_eq!(k.files.len(), 100);
        assert_eq!(k.cache.live_objects(), before + 100);
    }

    #[test]
    fn reset_measurement_clears_counters_keeps_conns() {
        let mut k = Kernel::new(Machine::amd48());
        let sock = k.cache.alloc(DataType::TcpSock, CoreId(0));
        let id = k.new_conn(FlowTuple::client(1, 2, 80), sock, CoreId(0));
        k.charge(costs::SYS_READ, Access::default());
        k.requests_done = 5;
        k.reset_measurement();
        assert_eq!(k.perf.entry(KernelEntry::SysRead).calls, 0);
        assert_eq!(k.requests_done, 0);
        assert!(k.has_conn(id));
    }
}
