//! The request (SYN) hash table.
//!
//! §5.2: a per-core request table breaks when flow groups migrate (a SYN's
//! request socket would be in one core's table while the ACK arrives on
//! another core), so the design keeps **one** request hash table shared by
//! all listen-socket clones, with **per-bucket locks** to avoid contention;
//! the paper measured at most a 2 % penalty versus per-core tables.
//!
//! Stock-Accept uses the same structure but serializes every operation
//! under the single listen-socket lock instead of the bucket locks.

use crate::conn::ConnId;
use mem::{CacheModel, DataType, ObjId};
use metrics::lockstat::LockClass;
use nic::FlowTuple;
use serde::{Deserialize, Serialize};
use sim::fastmap::FastMap;
use sim::lock::TimelineLock;
use sim::topology::CoreId;

/// Identifies a pending connection request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReqId(pub u64);

/// A pending request: the `tcp_request_sock` object plus, once the
/// handshake completes, the child connection it points at (Linux keeps the
/// request socket on the accept queue as the handle to the child).
#[derive(Debug)]
pub struct ReqSock {
    /// Stable id.
    pub id: ReqId,
    /// The flow that sent the SYN.
    pub tuple: FlowTuple,
    /// The `tcp_request_sock` object.
    pub obj: ObjId,
    /// The established child connection, set when the ACK arrives.
    pub child: Option<ConnId>,
}

struct Bucket {
    lock: TimelineLock,
    head: ObjId,
    items: Vec<ReqId>,
}

/// The shared request hash table with per-bucket locks.
pub struct ReqTable {
    buckets: Vec<Bucket>,
    reqs: FastMap<u64, ReqSock>,
    next: u64,
    mask: usize,
}

impl std::fmt::Debug for ReqTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqTable")
            .field("buckets", &self.buckets.len())
            .field("pending", &self.reqs.len())
            .finish()
    }
}

impl ReqTable {
    /// Creates a table with `n_buckets` (rounded up to a power of two)
    /// bucket heads allocated in the cache model.
    pub fn new(n_buckets: usize, cache: &mut CacheModel) -> Self {
        let n = n_buckets.next_power_of_two();
        let buckets = (0..n)
            .map(|_| Bucket {
                lock: TimelineLock::new(LockClass::RequestBucket),
                head: cache.alloc(DataType::HashBucket, CoreId(0)),
                items: Vec::new(),
            })
            .collect();
        Self {
            buckets,
            reqs: FastMap::default(),
            next: 1,
            mask: n - 1,
        }
    }

    /// Number of pending requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Total requests ever inserted (never decremented; the conservation
    /// audit balances this against establishes + drops + reaps +
    /// residual).
    #[must_use]
    pub fn created(&self) -> u64 {
        self.next - 1
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    fn bucket_of(&self, tuple: &FlowTuple) -> usize {
        (tuple.hash() as usize) & self.mask
    }

    /// The bucket lock guarding `tuple`'s chain (callers acquire it when
    /// running with fine-grained locking).
    pub fn bucket_lock(&mut self, tuple: &FlowTuple) -> &mut TimelineLock {
        let b = self.bucket_of(tuple);
        &mut self.buckets[b].lock
    }

    /// The bucket head object for `tuple` (touched on every chain walk).
    #[must_use]
    pub fn bucket_head(&self, tuple: &FlowTuple) -> ObjId {
        self.buckets[self.bucket_of(tuple)].head
    }

    /// Inserts a new request for `tuple` backed by `obj`.
    pub fn insert(&mut self, tuple: FlowTuple, obj: ObjId) -> ReqId {
        let id = ReqId(self.next);
        self.next += 1;
        let b = self.bucket_of(&tuple);
        self.buckets[b].items.push(id);
        self.reqs.insert(
            id.0,
            ReqSock {
                id,
                tuple,
                obj,
                child: None,
            },
        );
        id
    }

    /// Finds the pending request for `tuple`.
    #[must_use]
    pub fn lookup(&self, tuple: &FlowTuple) -> Option<ReqId> {
        let b = self.bucket_of(tuple);
        self.buckets[b]
            .items
            .iter()
            .copied()
            .find(|id| self.reqs.get(&id.0).is_some_and(|r| r.tuple == *tuple))
    }

    /// Removes a request from its chain and returns it (ACK processing:
    /// the request leaves the table and, in Linux, moves to the accept
    /// queue pointing at the child socket).
    pub fn remove(&mut self, id: ReqId) -> Option<ReqSock> {
        let req = self.reqs.remove(&id.0)?;
        let b = self.bucket_of(&req.tuple);
        self.buckets[b].items.retain(|r| *r != id);
        Some(req)
    }

    /// Immutable access to a pending request.
    #[must_use]
    pub fn get(&self, id: ReqId) -> Option<&ReqSock> {
        self.reqs.get(&id.0)
    }

    /// Mutable access to a pending request.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut ReqSock> {
        self.reqs.get_mut(&id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup() -> (ReqTable, CacheModel) {
        let mut cache = CacheModel::new(Machine::amd48());
        let t = ReqTable::new(1024, &mut cache);
        (t, cache)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let (mut t, mut cache) = setup();
        let tuple = FlowTuple::client(7, 4242, 80);
        let obj = cache.alloc(DataType::TcpRequestSock, CoreId(0));
        let id = t.insert(tuple, obj);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&tuple), Some(id));
        let req = t.remove(id).expect("present");
        assert_eq!(req.tuple, tuple);
        assert_eq!(req.obj, obj);
        assert!(t.is_empty());
        // Removal does not un-create: the counter is monotone.
        assert_eq!(t.created(), 1);
        assert_eq!(t.lookup(&tuple), None);
    }

    #[test]
    fn lookup_distinguishes_tuples_in_same_bucket() {
        let (mut t, mut cache) = setup();
        // Force potential collisions by using many tuples.
        let mut ids = Vec::new();
        for port in 0..200u16 {
            let tuple = FlowTuple::client(1, port, 80);
            let obj = cache.alloc(DataType::TcpRequestSock, CoreId(0));
            ids.push((tuple, t.insert(tuple, obj)));
        }
        for (tuple, id) in ids {
            assert_eq!(t.lookup(&tuple), Some(id));
        }
    }

    #[test]
    fn child_assignment() {
        let (mut t, mut cache) = setup();
        let tuple = FlowTuple::client(9, 1, 80);
        let obj = cache.alloc(DataType::TcpRequestSock, CoreId(0));
        let id = t.insert(tuple, obj);
        t.get_mut(id).unwrap().child = Some(ConnId(77));
        assert_eq!(t.get(id).unwrap().child, Some(ConnId(77)));
    }

    #[test]
    fn bucket_head_stable_for_tuple() {
        let (mut t, _cache) = setup();
        let tuple = FlowTuple::client(3, 33, 80);
        let h1 = t.bucket_head(&tuple);
        let h2 = t.bucket_head(&tuple);
        assert_eq!(h1, h2);
        let _ = t.bucket_lock(&tuple);
    }

    #[test]
    fn remove_missing_is_none() {
        let (mut t, _cache) = setup();
        assert!(t.remove(ReqId(999)).is_none());
    }
}
