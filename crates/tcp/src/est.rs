//! The global established-connections hash table.
//!
//! §2.1/§5.2: Linux keeps one global hash table for established
//! connections, with fine-grained (per-bucket) locking; the paper leaves it
//! in place for all listen-socket implementations. Every incoming packet
//! performs a lookup here, and insert/remove on connection setup/teardown
//! write the bucket chains — the residual cross-core sharing that remains
//! even under Affinity-Accept.

use crate::conn::ConnId;
use mem::{CacheModel, DataType, ObjId};
use metrics::lockstat::LockClass;
use nic::FlowTuple;
use sim::lock::TimelineLock;
use sim::topology::CoreId;

struct Bucket {
    lock: TimelineLock,
    head: ObjId,
    items: Vec<(FlowTuple, ConnId)>,
}

/// The established-connections table.
pub struct EstTable {
    buckets: Vec<Bucket>,
    mask: usize,
    len: usize,
}

impl std::fmt::Debug for EstTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstTable")
            .field("buckets", &self.buckets.len())
            .field("len", &self.len)
            .finish()
    }
}

impl EstTable {
    /// Creates a table with `n_buckets` (rounded up to a power of two).
    pub fn new(n_buckets: usize, cache: &mut CacheModel) -> Self {
        let n = n_buckets.next_power_of_two();
        let buckets = (0..n)
            .map(|_| Bucket {
                lock: TimelineLock::new(LockClass::EstablishedBucket),
                head: cache.alloc(DataType::HashBucket, CoreId(0)),
                items: Vec::new(),
            })
            .collect();
        Self {
            buckets,
            mask: n - 1,
            len: 0,
        }
    }

    /// Established connections currently in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, tuple: &FlowTuple) -> usize {
        (tuple.hash() as usize) & self.mask
    }

    /// The bucket lock guarding `tuple`'s chain.
    pub fn bucket_lock(&mut self, tuple: &FlowTuple) -> &mut TimelineLock {
        let b = self.bucket_of(tuple);
        &mut self.buckets[b].lock
    }

    /// The bucket head object (touched on every per-packet lookup).
    #[must_use]
    pub fn bucket_head(&self, tuple: &FlowTuple) -> ObjId {
        self.buckets[self.bucket_of(tuple)].head
    }

    /// Inserts an established connection.
    pub fn insert(&mut self, tuple: FlowTuple, conn: ConnId) {
        let b = self.bucket_of(&tuple);
        debug_assert!(!self.buckets[b].items.iter().any(|(t, _)| *t == tuple));
        self.buckets[b].items.push((tuple, conn));
        self.len += 1;
    }

    /// Per-packet lookup.
    #[must_use]
    pub fn lookup(&self, tuple: &FlowTuple) -> Option<ConnId> {
        let b = self.bucket_of(tuple);
        self.buckets[b]
            .items
            .iter()
            .find(|(t, _)| t == tuple)
            .map(|(_, c)| *c)
    }

    /// Another connection in `tuple`'s bucket chain, if any — hash-chain
    /// insertion and removal write the *neighbour's* linkage fields, which
    /// is the residual cross-core sharing that remains even under perfect
    /// connection affinity (§6.4: "the kernel adds `tcp_sock` objects to
    /// global lists; multiple cores manipulate these lists").
    #[must_use]
    pub fn chain_neighbor(&self, tuple: &FlowTuple, not: ConnId) -> Option<ConnId> {
        let b = self.bucket_of(tuple);
        self.buckets[b]
            .items
            .iter()
            .find(|(_, c)| *c != not)
            .map(|(_, c)| *c)
    }

    /// Removes a connection at teardown; returns whether it was present.
    pub fn remove(&mut self, tuple: &FlowTuple) -> bool {
        let b = self.bucket_of(tuple);
        let before = self.buckets[b].items.len();
        self.buckets[b].items.retain(|(t, _)| t != tuple);
        let removed = self.buckets[b].items.len() < before;
        if removed {
            self.len -= 1;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::topology::Machine;

    fn setup() -> (EstTable, CacheModel) {
        let mut cache = CacheModel::new(Machine::amd48());
        let t = EstTable::new(4096, &mut cache);
        (t, cache)
    }

    #[test]
    fn insert_lookup_remove() {
        let (mut t, _c) = setup();
        let tuple = FlowTuple::client(1, 5555, 80);
        t.insert(tuple, ConnId(9));
        assert_eq!(t.lookup(&tuple), Some(ConnId(9)));
        assert_eq!(t.len(), 1);
        assert!(t.remove(&tuple));
        assert!(!t.remove(&tuple));
        assert!(t.is_empty());
        assert_eq!(t.lookup(&tuple), None);
    }

    #[test]
    fn many_connections_coexist() {
        let (mut t, _c) = setup();
        for port in 0..1000u16 {
            t.insert(FlowTuple::client(2, port, 80), ConnId(u64::from(port)));
        }
        assert_eq!(t.len(), 1000);
        for port in (0..1000u16).step_by(7) {
            assert_eq!(
                t.lookup(&FlowTuple::client(2, port, 80)),
                Some(ConnId(u64::from(port)))
            );
        }
    }

    #[test]
    fn bucket_head_is_stable() {
        let (t, _c) = setup();
        let tuple = FlowTuple::client(2, 3, 80);
        assert_eq!(t.bucket_head(&tuple), t.bucket_head(&tuple));
    }
}
