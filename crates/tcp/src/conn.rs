//! Connection state.
//!
//! A [`Conn`] is the simulated counterpart of an established Linux TCP
//! connection: a `tcp_sock` object in the cache model, a receive queue of
//! `sk_buff`s awaiting `read()`, in-flight transmit buffers awaiting their
//! acknowledgment, the per-connection lock, and — the quantity this whole
//! paper is about — the pair of cores that touch it: the core the NIC's
//! steering delivers its packets to (`rx_core`) and the core whose
//! application thread accepted it (`app_core`).

use mem::ObjId;
use nic::FlowTuple;
use serde::{Deserialize, Serialize};
use sim::lock::TimelineLock;
use sim::topology::CoreId;

/// Identifies one connection for the lifetime of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnId(pub u64);

/// Lifecycle state of a server-side connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Handshake finished; sitting in an accept queue or being served.
    Established,
    /// FIN seen / shutdown issued.
    Closing,
    /// Fully closed (kept briefly for accounting).
    Closed,
}

/// One received, not-yet-`read()` data segment.
#[derive(Debug, Clone, Copy)]
pub struct RxSegment {
    /// The `sk_buff` holding the packet.
    pub skb: ObjId,
    /// The page-sized data buffer.
    pub page: ObjId,
    /// Payload bytes.
    pub payload: u32,
    /// Application tag carried by the packet (the requested file index).
    pub tag: u32,
}

/// Transmit-side buffers in flight until the client acknowledges them.
#[derive(Debug, Clone, Default)]
pub struct TxInflight {
    /// Send-buffer chunks (`slab:size-1024`).
    pub chunks: Vec<ObjId>,
    /// Transmit `sk_buff`s.
    pub skbs: Vec<ObjId>,
}

/// An established connection.
#[derive(Debug)]
pub struct Conn {
    /// Stable id.
    pub id: ConnId,
    /// The flow five-tuple.
    pub tuple: FlowTuple,
    /// The `tcp_sock` object in the cache model.
    pub sock: ObjId,
    /// The socket's file-descriptor object, created at `accept()`.
    pub fd: Option<ObjId>,
    /// Small per-connection metadata block (`slab:size-128`), created
    /// packet-side at establishment and consumed by `accept()`.
    pub meta: Option<ObjId>,
    /// Core currently receiving this flow's packets from the NIC.
    pub rx_core: CoreId,
    /// Core whose application thread owns the connection (set at accept).
    pub app_core: Option<CoreId>,
    /// Lifecycle state.
    pub state: ConnState,
    /// Received segments awaiting `read()`.
    pub rcv_queue: Vec<RxSegment>,
    /// Unacknowledged transmit buffers.
    pub tx_inflight: TxInflight,
    /// The per-connection (`sock`) lock.
    pub lock: TimelineLock,
    /// Requests completed on this connection (for accounting).
    pub requests_done: u32,
}

impl Conn {
    /// Creates an established connection whose packets arrive on `rx_core`.
    #[must_use]
    pub fn new(id: ConnId, tuple: FlowTuple, sock: ObjId, rx_core: CoreId) -> Self {
        Self {
            id,
            tuple,
            sock,
            fd: None,
            meta: None,
            rx_core,
            app_core: None,
            state: ConnState::Established,
            rcv_queue: Vec::new(),
            tx_inflight: TxInflight::default(),
            lock: TimelineLock::new(metrics::lockstat::LockClass::Connection),
            requests_done: 0,
        }
    }

    /// Whether packet processing and application processing currently run
    /// on the same core — the paper's definition of connection affinity.
    #[must_use]
    pub fn has_affinity(&self) -> bool {
        self.app_core == Some(self.rx_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Conn {
        Conn::new(
            ConnId(1),
            FlowTuple::client(1, 1000, 80),
            ObjId(42),
            CoreId(3),
        )
    }

    #[test]
    fn new_connection_is_established_and_unowned() {
        let c = conn();
        assert_eq!(c.state, ConnState::Established);
        assert!(c.app_core.is_none());
        assert!(!c.has_affinity());
        assert!(c.rcv_queue.is_empty());
    }

    #[test]
    fn affinity_requires_matching_cores() {
        let mut c = conn();
        c.app_core = Some(CoreId(5));
        assert!(!c.has_affinity());
        c.app_core = Some(CoreId(3));
        assert!(c.has_affinity());
        // Flow-group migration moves the rx side: affinity breaks.
        c.rx_core = CoreId(9);
        assert!(!c.has_affinity());
    }
}
