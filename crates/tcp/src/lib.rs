//! A Linux-structured model of kernel TCP connection processing.
//!
//! This crate reproduces the *structure* of the Linux 2.6.35 connection
//! path the paper modifies (§2): which data structures exist, which locks
//! guard them, and which cache lines each kernel entry point touches on
//! which core. It does not move real bytes; it moves costs:
//!
//! * [`kernel::Kernel`] — the per-run kernel context: the cache model, the
//!   slab allocator, `lock_stat`, performance counters, the connection
//!   table, and the global established/request hash tables.
//! * [`costs`] — per-entry instruction budgets and fixed miss counts,
//!   calibrated so that an Affinity-Accept run lands near Table 3's
//!   per-request counters; the *differences* between implementations are
//!   emergent from the cache model, not tabulated.
//! * [`ops`] — the data-path operations (softirq packet processing,
//!   `read`, `writev`, `poll`, `shutdown`, `close`, wakeups), each
//!   charging its entry's counters and touching its fields of the
//!   connection's objects on the executing core.
//! * [`req`] — the request (SYN) hash table, one instance shared by all
//!   listen-socket clones with per-bucket locks (§5.2).
//! * [`est`] — the global established-connections hash table with
//!   per-bucket locks.
//! * [`conn`] — connection state: the `tcp_sock` object, receive queue,
//!   in-flight transmit buffers, and core assignments.
//!
//! The listen-socket implementations themselves (Stock, Fine, Affinity)
//! live in the `affinity-accept` crate and compose these primitives under
//! their respective locking policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod costs;
pub mod est;
pub mod kernel;
pub mod ops;
pub mod req;

pub use conn::{Conn, ConnId, ConnState};
pub use kernel::Kernel;
pub use req::{ReqId, ReqTable};
