//! The kernel data-path operations.
//!
//! Each function models one kernel entry-point invocation on a given core
//! at a given simulated time: it performs the operation's structural
//! effects (allocate/free objects, move a request between tables, queue a
//! segment), touches the operation's fields of the affected objects in the
//! cache model *on that core*, charges the entry's performance counters,
//! and returns the invocation's duration in cycles.
//!
//! The locking policy is the caller's business where the paper varies it
//! (the listen-socket path); operations on structures whose locking the
//! paper keeps fixed (per-bucket established/request locks, per-connection
//! locks) take those locks here. `fine_locks: false` lets Stock-Accept
//! skip the request-table bucket locks it replaces with the single listen
//! socket lock.

use crate::conn::{ConnId, ConnState, RxSegment};
use crate::costs::{self, EntryCost};
use crate::kernel::{charge_parts, Kernel, TaskObjs};
use crate::req::ReqId;
use mem::cache::Access;
use mem::layout::FieldTag;
use mem::{CacheModel, DataType, ObjId};
use nic::FlowTuple;
use sim::time::Cycles;
use sim::topology::CoreId;

/// TCP maximum segment payload on the simulated wire.
pub const MSS: u32 = 1448;

/// Hold time of a hash-bucket lock (chain walk + link update).
const BUCKET_LOCK_HOLD: Cycles = 500;
/// Baseline hold time of the per-connection lock beyond tracked accesses.
const CONN_LOCK_HOLD_BASE: Cycles = 1_500;

/// Touches up to `max_n` fields of `obj` carrying `tag`.
fn access_some(
    cache: &mut CacheModel,
    core: CoreId,
    obj: ObjId,
    tag: FieldTag,
    write: bool,
    max_n: usize,
) -> Access {
    let ty = cache.type_of(obj);
    let mut acc = Access::default();
    for &idx in mem::layout::tag_indices(ty, tag).iter().take(max_n) {
        acc.add(cache.access_field(core, obj, usize::from(idx), write));
    }
    acc
}

/// Cost of taking the sock lock: the lock word itself is a cache line
/// written by every locker, so it ping-pongs whenever packet side and
/// application side run on different cores.
fn lock_word_access(cache: &mut CacheModel, core: CoreId, sock: ObjId) -> Access {
    access_some(cache, core, sock, FieldTag::GlobalNode, true, 1)
}

/// The wakeup a softirq performs when new work arrives for a sleeping
/// task: it writes the task's scheduler fields and pokes its stack. Under
/// Fine-Accept the waker usually sits on a different core than the task —
/// these writes are what make `schedule`'s Table 3 row expensive there.
fn wake_access(cache: &mut CacheModel, core: CoreId, target: &TaskObjs) -> Access {
    let mut acc = cache.access_tagged(core, target.ts, FieldTag::BothRwByRx, true);
    acc.add(access_some(
        cache,
        core,
        target.stack,
        FieldTag::BothRwByRx,
        true,
        4,
    ));
    acc.add(access_some(
        cache,
        core,
        target.waitq,
        FieldTag::BothRwByRx,
        true,
        1,
    ));
    acc
}

/// Softirq cost of recognizing a retransmitted SYN whose request socket
/// already exists: hash lookup plus a SYN-ACK retransmit, no allocation.
pub const SYN_DUP_COST: Cycles = 2_000;

/// SYN arrival (softirq): allocates a request socket, inserts it into the
/// request hash table, and emits a SYN-ACK (the caller transmits it).
///
/// A retransmitted SYN (possible only under fault injection: a duplicated
/// or reordered packet, or a client retry racing the original) finds the
/// existing request socket and resends the SYN-ACK instead of inserting a
/// second entry for the tuple, which would leak.
pub fn syn(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    tuple: FlowTuple,
    fine_locks: bool,
) -> (Cycles, ReqId) {
    if let Some(existing) = k.reqs.lookup(&tuple) {
        return (SYN_DUP_COST, existing);
    }
    let mut tracked = Access::default();
    let (obj, cost) = k.slab.alloc(core, DataType::TcpRequestSock, &mut k.cache);
    tracked.add(cost);
    tracked.add(k.cache.access_tagged(core, obj, FieldTag::BothRwByRx, true));
    tracked.add(k.cache.access_tagged(core, obj, FieldTag::RxOnly, true));
    tracked.add(k.cache.access_tagged(core, obj, FieldTag::BothRo, false));
    let head = k.reqs.bucket_head(&tuple);
    tracked.add(
        k.cache
            .access_tagged(core, head, FieldTag::GlobalNode, true),
    );
    let mut spin = 0;
    let mut lock_overhead = 0;
    if fine_locks {
        let (_, w) = k
            .reqs
            .bucket_lock(&tuple)
            .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
        spin = w;
        lock_overhead = k.lockstat.op_overhead();
    }
    let id = k.reqs.insert(tuple, obj);
    let cycles = k.charge(costs::SOFTIRQ_SYN, tracked);
    (cycles + spin + lock_overhead, id)
}

/// Extra computation cycles for encoding or validating a SYN cookie
/// (the ISN hash Linux computes in `cookie_v4_init_sequence` /
/// `cookie_v4_check`).
pub const COOKIE_HASH_COST: Cycles = 1_200;

/// Stateless SYN handling in cookie mode (softirq): probes the request
/// table (finding nothing — saturation is why cookies are on), encodes
/// the cookie into the SYN/ACK's sequence number, and emits the SYN/ACK
/// (the caller transmits it). **No allocation, no table insert** — that
/// is the whole point of the defense.
pub fn cookie_synack(k: &mut Kernel, core: CoreId, at: Cycles, tuple: FlowTuple) -> Cycles {
    let _ = at;
    let head = k.reqs.bucket_head(&tuple);
    let tracked = k
        .cache
        .access_tagged(core, head, FieldTag::GlobalNode, false);
    k.charge(costs::SOFTIRQ_SYN, tracked) + COOKIE_HASH_COST
}

/// Handshake-completing ACK that carries a valid SYN cookie (softirq):
/// Linux's `cookie_v4_check` path. The request socket is rebuilt *at ACK
/// time* from the cookie (it was never in the request table), then the
/// child `tcp_sock` is created and inserted into the established table
/// exactly as in [`ack_establish`]. Returns the connection and the
/// rebuilt request-socket object for the accept queue.
pub fn cookie_establish(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    tuple: FlowTuple,
) -> (Cycles, ConnId, ObjId) {
    let mut tracked = Access::default();
    // The probe that found no half-open entry for the tuple.
    let head = k.reqs.bucket_head(&tuple);
    tracked.add(
        k.cache
            .access_tagged(core, head, FieldTag::GlobalNode, false),
    );
    // Rebuild the request socket from the cookie.
    let (req_obj, cost) = k.slab.alloc(core, DataType::TcpRequestSock, &mut k.cache);
    tracked.add(cost);
    tracked.add(
        k.cache
            .access_tagged(core, req_obj, FieldTag::BothRwByRx, true),
    );
    tracked.add(k.cache.access_tagged(core, req_obj, FieldTag::RxOnly, true));

    // Create the child socket and initialize the packet-side state.
    let (sock, cost) = k.slab.alloc(core, DataType::TcpSock, &mut k.cache);
    tracked.add(cost);
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, true),
    );
    tracked.add(access_some(
        &mut k.cache,
        core,
        sock,
        FieldTag::RxOnly,
        true,
        5,
    ));
    tracked.add(k.cache.access_tagged(core, sock, FieldTag::BothRo, false));

    // Insert into the established table under its bucket lock.
    let (_, spin) = k
        .est
        .bucket_lock(&tuple)
        .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
    let lock_overhead = k.lockstat.op_overhead();
    let est_head = k.est.bucket_head(&tuple);
    tracked.add(
        k.cache
            .access_tagged(core, est_head, FieldTag::GlobalNode, true),
    );
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::GlobalNode, true),
    );

    let (meta, mcost) = k.slab.alloc(core, DataType::Slab128, &mut k.cache);
    tracked.add(mcost);
    tracked.add(
        k.cache
            .access_tagged(core, meta, FieldTag::BothRwByRx, true),
    );
    let conn = k.new_conn(tuple, sock, core);
    k.conn_mut(conn).meta = Some(meta);
    k.est.insert(tuple, conn);
    if let Some(nb) = k.est.chain_neighbor(&tuple, conn) {
        let nb_sock = k.conn(nb).sock;
        tracked.add(access_some(
            &mut k.cache,
            core,
            nb_sock,
            FieldTag::GlobalNode,
            true,
            2,
        ));
    }
    let cycles = k.charge(costs::SOFTIRQ_ACK_EST, tracked);
    (
        cycles + COOKIE_HASH_COST + spin + lock_overhead,
        conn,
        req_obj,
    )
}

/// SYN/ACK retransmission for a half-open request whose TTL expired
/// (timer context): reads the request state and re-emits the SYN/ACK.
/// No allocation; returns `None` if the request is already gone.
pub fn synack_retransmit(k: &mut Kernel, core: CoreId, req: ReqId) -> Option<Cycles> {
    let obj = k.reqs.get(req)?.obj;
    let tracked = k
        .cache
        .access_tagged(core, obj, FieldTag::BothRwByRx, false);
    Some(k.charge(costs::SOFTIRQ_SYN, tracked))
}

/// Reaps a half-open request at the SYN/ACK retry cap (timer context):
/// unlinks it from its bucket chain and frees the request socket.
/// Returns `None` if the request is already gone (the handshake won the
/// race).
pub fn reap_request(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    req: ReqId,
    fine_locks: bool,
) -> Option<Cycles> {
    let tuple = k.reqs.get(req)?.tuple;
    let mut spin = 0;
    let mut lock_overhead = 0;
    if fine_locks {
        let (_, w) = k
            .reqs
            .bucket_lock(&tuple)
            .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
        spin = w;
        lock_overhead = k.lockstat.op_overhead();
    }
    let head = k.reqs.bucket_head(&tuple);
    let mut tracked = k
        .cache
        .access_tagged(core, head, FieldTag::GlobalNode, true);
    let r = k.reqs.remove(req)?;
    tracked.add(
        k.cache
            .access_tagged(core, r.obj, FieldTag::BothRwByRx, false),
    );
    tracked.add(k.slab.free(core, r.obj, &mut k.cache));
    Some(k.charge(costs::SOFTIRQ_SYN, tracked) + spin + lock_overhead)
}

/// Handshake-completing ACK (softirq): removes the request from the hash
/// table, creates the child `tcp_sock`, and inserts it into the
/// established table. Returns the new connection and the request-socket
/// object, which Linux parks on the accept queue as the child's handle.
///
/// Also allocates the child's small option/metadata block
/// (`slab:size-128`), recorded on the connection and consumed by
/// `accept()` — another object written packet-side and read app-side.
pub fn ack_establish(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    req: ReqId,
    fine_locks: bool,
) -> Option<(Cycles, ConnId, ObjId)> {
    let mut tracked = Access::default();
    let tuple = k.reqs.get(req)?.tuple;
    let mut spin = 0;
    let mut lock_overhead = 0;
    if fine_locks {
        let (_, w) = k
            .reqs
            .bucket_lock(&tuple)
            .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
        spin += w;
        lock_overhead += k.lockstat.op_overhead();
    }
    let head = k.reqs.bucket_head(&tuple);
    tracked.add(
        k.cache
            .access_tagged(core, head, FieldTag::GlobalNode, true),
    );
    let req_sock = k.reqs.remove(req)?;
    // Read the request state to build the child.
    tracked.add(
        k.cache
            .access_tagged(core, req_sock.obj, FieldTag::BothRwByRx, false),
    );
    tracked.add(
        k.cache
            .access_tagged(core, req_sock.obj, FieldTag::BothRo, false),
    );

    // Create the child socket and initialize the packet-side state.
    let (sock, cost) = k.slab.alloc(core, DataType::TcpSock, &mut k.cache);
    tracked.add(cost);
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, true),
    );
    tracked.add(access_some(
        &mut k.cache,
        core,
        sock,
        FieldTag::RxOnly,
        true,
        5,
    ));
    tracked.add(k.cache.access_tagged(core, sock, FieldTag::BothRo, false));

    // Insert into the established table under its bucket lock.
    let (_, w) = k
        .est
        .bucket_lock(&tuple)
        .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
    spin += w;
    lock_overhead += k.lockstat.op_overhead();
    let est_head = k.est.bucket_head(&tuple);
    tracked.add(
        k.cache
            .access_tagged(core, est_head, FieldTag::GlobalNode, true),
    );
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::GlobalNode, true),
    );

    let (meta, mcost) = k.slab.alloc(core, DataType::Slab128, &mut k.cache);
    tracked.add(mcost);
    tracked.add(
        k.cache
            .access_tagged(core, meta, FieldTag::BothRwByRx, true),
    );
    let conn = k.new_conn(tuple, sock, core);
    k.conn_mut(conn).meta = Some(meta);
    k.est.insert(tuple, conn);
    // Linking into the chain writes the neighbour's linkage fields — a
    // cross-core write whenever the neighbour lives on another core.
    if let Some(nb) = k.est.chain_neighbor(&tuple, conn) {
        let nb_sock = k.conn(nb).sock;
        tracked.add(access_some(
            &mut k.cache,
            core,
            nb_sock,
            FieldTag::GlobalNode,
            true,
            2,
        ));
    }
    let cycles = k.charge(costs::SOFTIRQ_ACK_EST, tracked);
    Some((cycles + spin + lock_overhead, conn, req_sock.obj))
}

/// Per-packet established-table lookup cost (bucket head + socket chain
/// node), shared by the data-path softirq handlers.
fn est_lookup_access(k: &mut Kernel, core: CoreId, conn: ConnId) -> Access {
    let c = k.conn(conn);
    let (tuple, sock) = (c.tuple, c.sock);
    let head = k.est.bucket_head(&tuple);
    let mut acc = k
        .cache
        .access_tagged(core, head, FieldTag::GlobalNode, false);
    acc.add(access_some(
        &mut k.cache,
        core,
        sock,
        FieldTag::GlobalNode,
        false,
        1,
    ));
    acc
}

/// Data segment arrival (softirq): allocates the `sk_buff` and data page,
/// updates the socket's receive state, queues the segment for `read()`,
/// and optionally wakes the owning task.
pub fn data_rx(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    conn: ConnId,
    payload: u32,
    tag: u32,
    wake: Option<&TaskObjs>,
) -> Cycles {
    let mut tracked = est_lookup_access(k, core, conn);
    let (skb, c1) = k.slab.alloc(core, DataType::SkBuff, &mut k.cache);
    tracked.add(c1);
    let (page, c2) = k.slab.alloc(core, DataType::Slab4096, &mut k.cache);
    tracked.add(c2);
    tracked.add(k.cache.access_tagged(core, skb, FieldTag::BothRwByRx, true));
    tracked.add(k.cache.access_tagged(core, skb, FieldTag::RxOnly, true));
    tracked.add(k.cache.access_tagged(core, skb, FieldTag::BothRo, true));
    tracked.add(k.cache.access_tagged(core, skb, FieldTag::GlobalNode, true));
    tracked.add(access_some(
        &mut k.cache,
        core,
        page,
        FieldTag::BothRwByRx,
        true,
        5,
    ));

    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let sock = conn_ref.sock;
    tracked.add(lock_word_access(p.cache, core, sock));
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, true),
    );
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, false),
    );
    tracked.add(p.cache.access_tagged(core, sock, FieldTag::BothRo, false));
    tracked.add(access_some(p.cache, core, sock, FieldTag::RxOnly, true, 6));
    if let Some(t) = wake {
        tracked.add(wake_access(p.cache, core, t));
    }
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    conn_ref.rcv_queue.push(RxSegment {
        skb,
        page,
        payload,
        tag,
    });
    let cycles = charge_parts(p.machine, p.perf, costs::SOFTIRQ_DATA, tracked);
    cycles + spin + lock_overhead
}

/// Bare ACK of transmitted data (softirq): releases the acknowledged
/// transmit buffers — on *this* core, which under Fine-Accept is not the
/// core that allocated them in `writev`.
pub fn data_ack_rx(k: &mut Kernel, core: CoreId, at: Cycles, conn: ConnId) -> Cycles {
    let mut tracked = est_lookup_access(k, core, conn);
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let sock = conn_ref.sock;
    // ACK processing walks the retransmit queue and updates congestion
    // state: it touches the full hot set of the socket.
    tracked.add(lock_word_access(p.cache, core, sock));
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, true),
    );
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, false),
    );
    tracked.add(p.cache.access_tagged(core, sock, FieldTag::BothRo, false));
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    // Drain in place: the inflight vectors keep their capacity for the
    // connection's next response.
    for chunk in conn_ref.tx_inflight.chunks.drain(..) {
        tracked.add(
            p.cache
                .access_tagged(core, chunk, FieldTag::BothRwByApp, false),
        );
        tracked.add(p.slab.free(core, chunk, p.cache));
    }
    for skb in conn_ref.tx_inflight.skbs.drain(..) {
        tracked.add(p.slab.free(core, skb, p.cache));
    }
    let cycles = charge_parts(p.machine, p.perf, costs::SOFTIRQ_DATA_ACK, tracked);
    cycles + spin + lock_overhead
}

/// Transmit-completion interrupt processing on the connection's ring
/// core: the device finished DMA, the driver frees the transmit `sk_buff`s
/// and releases write-memory accounting — state the application side
/// wrote. Without connection affinity this is a third cross-core
/// direction switch on every response.
pub fn tx_complete(k: &mut Kernel, core: CoreId, at: Cycles, conn: ConnId) -> Cycles {
    let _ = at;
    let (conns, p) = k.split();
    let Some(conn_ref) = conns.get_mut(&conn.0) else {
        return 300;
    };
    let sock = conn_ref.sock;
    let mut tracked = lock_word_access(p.cache, core, sock);
    // Release wmem accounting and socket write state the app dirtied.
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, false),
    );
    for skb in conn_ref.tx_inflight.skbs.drain(..) {
        tracked.add(
            p.cache
                .access_tagged(core, skb, FieldTag::BothRwByRx, false),
        );
        tracked.add(p.slab.free(core, skb, p.cache));
    }
    charge_parts(p.machine, p.perf, costs::SOFTIRQ_TX_COMPLETE, tracked)
}

/// FIN arrival (softirq): the client is done; optionally wakes the owner.
pub fn fin_rx(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    conn: ConnId,
    wake: Option<&TaskObjs>,
) -> Cycles {
    let mut tracked = est_lookup_access(k, core, conn);
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let sock = conn_ref.sock;
    tracked.add(lock_word_access(p.cache, core, sock));
    tracked.add(access_some(
        p.cache,
        core,
        sock,
        FieldTag::BothRwByRx,
        true,
        6,
    ));
    if let Some(t) = wake {
        tracked.add(wake_access(p.cache, core, t));
    }
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    conn_ref.state = ConnState::Closing;
    let cycles = charge_parts(p.machine, p.perf, costs::SOFTIRQ_FIN, tracked);
    cycles + spin + lock_overhead
}

/// The post-dequeue half of `accept()`: reads and frees the request
/// socket, creates the file descriptor, and binds the connection to this
/// core. Charges `sys_accept4`, `sys_getsockname`, and `sys_fcntl`
/// (applications do all three per accepted connection).
pub fn accept_established(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    conn: ConnId,
    req_obj: ObjId,
) -> Cycles {
    let _ = at;
    let mut tracked = Access::default();
    // Reading the request socket the packet side wrote: the 100%-shared
    // object of Table 4 under Fine-Accept.
    tracked.add(
        k.cache
            .access_tagged(core, req_obj, FieldTag::BothRwByRx, false),
    );
    tracked.add(
        k.cache
            .access_tagged(core, req_obj, FieldTag::BothRo, false),
    );
    tracked.add(k.slab.free(core, req_obj, &mut k.cache));
    let (fd, cost) = k.slab.alloc(core, DataType::SocketFd, &mut k.cache);
    tracked.add(cost);
    tracked.add(k.cache.access_tagged(core, fd, FieldTag::GlobalNode, true));
    tracked.add(access_some(
        &mut k.cache,
        core,
        fd,
        FieldTag::AppOnly,
        true,
        4,
    ));
    let sock = k.conn(conn).sock;
    tracked.add(k.cache.access_tagged(core, sock, FieldTag::BothRo, false));
    // accept() reads the state the handshake path initialized (sequence
    // numbers, windows) — all dirty on the packet-side core.
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, false),
    );
    if let Some(meta) = k.conn_mut(conn).meta.take() {
        tracked.add(
            k.cache
                .access_tagged(core, meta, FieldTag::BothRwByRx, false),
        );
        tracked.add(k.slab.free(core, meta, &mut k.cache));
    }
    let c = k.conn_mut(conn);
    c.app_core = Some(core);
    c.fd = Some(fd);
    let mut cycles = k.charge(costs::SYS_ACCEPT4, tracked);
    cycles += k.charge(costs::SYS_GETSOCKNAME, Access::default());
    cycles += k.charge(costs::SYS_FCNTL, Access::default());
    cycles
}

/// `read()` of pending request data: drains the receive queue, freeing
/// the packet buffers on this core. Returns the application tags of the
/// drained segments (the requested file indices).
pub fn sys_read(k: &mut Kernel, core: CoreId, at: Cycles, conn: ConnId) -> (Cycles, Vec<u32>) {
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let sock = conn_ref.sock;
    let mut tracked = lock_word_access(p.cache, core, sock);
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, true),
    );
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, false),
    );
    tracked.add(access_some(p.cache, core, sock, FieldTag::AppOnly, true, 4));
    for seg in &conn_ref.rcv_queue {
        tracked.add(
            p.cache
                .access_tagged(core, seg.skb, FieldTag::BothRwByRx, false),
        );
        tracked.add(
            p.cache
                .access_tagged(core, seg.skb, FieldTag::BothRo, false),
        );
        tracked.add(
            p.cache
                .access_tagged(core, seg.skb, FieldTag::GlobalNode, false),
        );
        tracked.add(access_some(
            p.cache,
            core,
            seg.page,
            FieldTag::BothRwByRx,
            false,
            5,
        ));
    }
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    // Free the consumed buffers on the reading core (§2.2's remote
    // deallocation problem when that is not the allocating core). Draining
    // in place keeps the queue's capacity for the next request.
    let mut tags = Vec::with_capacity(conn_ref.rcv_queue.len());
    for seg in conn_ref.rcv_queue.drain(..) {
        tags.push(seg.tag);
        tracked.add(p.slab.free(core, seg.skb, p.cache));
        tracked.add(p.slab.free(core, seg.page, p.cache));
    }
    let cycles = charge_parts(p.machine, p.perf, costs::SYS_READ, tracked);
    (cycles + spin + lock_overhead, tags)
}

/// `writev()` of an HTTP response: allocates send-buffer chunks and
/// transmit `sk_buff`s; returns the number of wire packets to transmit.
pub fn sys_writev(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    conn: ConnId,
    bytes: u32,
) -> (Cycles, u32) {
    let n_chunks = bytes.div_ceil(1024).clamp(1, 8);
    let n_pkts = bytes.div_ceil(MSS).max(1);
    let mut tracked = Access::default();
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    // The fresh buffers go straight onto the inflight queues, whose
    // capacity survives from the connection's previous responses.
    for _ in 0..n_chunks {
        let (chunk, cost) = p.slab.alloc(core, DataType::Slab1024, p.cache);
        tracked.add(cost);
        tracked.add(
            p.cache
                .access_tagged(core, chunk, FieldTag::BothRwByApp, true),
        );
        // Copy the response into the chunk: touches the whole payload
        // region (warm only if this core freed the chunk recently).
        tracked.add(p.cache.access_tagged(core, chunk, FieldTag::AppOnly, true));
        conn_ref.tx_inflight.chunks.push(chunk);
    }
    for _ in 0..n_pkts {
        let (skb, cost) = p.slab.alloc(core, DataType::SkBuff, p.cache);
        tracked.add(cost);
        tracked.add(p.cache.access_tagged(core, skb, FieldTag::BothRwByRx, true));
        conn_ref.tx_inflight.skbs.push(skb);
    }
    let sock = conn_ref.sock;
    tracked.add(lock_word_access(p.cache, core, sock));
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, true),
    );
    // The transmit path consults receive-side state (rcv_wnd, ack status),
    // which the packet side keeps dirty.
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, false),
    );
    tracked.add(p.cache.access_tagged(core, sock, FieldTag::BothRo, false));
    tracked.add(access_some(p.cache, core, sock, FieldTag::AppOnly, true, 4));
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    let cycles = charge_parts(p.machine, p.perf, costs::SYS_WRITEV, tracked);
    (cycles + spin + lock_overhead, n_pkts)
}

/// One `poll()` invocation by an event loop or waiting worker.
pub fn sys_poll(k: &mut Kernel, core: CoreId, at: Cycles, task: &TaskObjs) -> Cycles {
    let _ = at;
    let mut tracked = k
        .cache
        .access_tagged(core, task.waitq, FieldTag::BothRwByRx, false);
    tracked.add(
        k.cache
            .access_tagged(core, task.waitq, FieldTag::GlobalNode, true),
    );
    k.charge(costs::SYS_POLL, tracked)
}

/// One `poll()` on a specific connection (Apache's worker waiting for the
/// next request on its socket): checks the receive state the packet side
/// maintains.
pub fn sys_poll_conn(
    k: &mut Kernel,
    core: CoreId,
    at: Cycles,
    task: &TaskObjs,
    conn: ConnId,
) -> Cycles {
    let _ = at;
    let sock = k.conn(conn).sock;
    let mut tracked = k
        .cache
        .access_tagged(core, task.waitq, FieldTag::BothRwByRx, false);
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::BothRwByRx, false),
    );
    k.charge(costs::SYS_POLL, tracked)
}

/// One futex sleep/wake pair (Apache's acceptor→worker handoff).
pub fn sys_futex_pair(k: &mut Kernel, core: CoreId, at: Cycles, task: &TaskObjs) -> Cycles {
    let _ = at;
    let mut tracked = k
        .cache
        .access_tagged(core, task.ts, FieldTag::BothRwByRx, false);
    tracked.add(access_some(
        &mut k.cache,
        core,
        task.waitq,
        FieldTag::BothRwByRx,
        true,
        1,
    ));
    k.charge(costs::SYS_FUTEX, tracked)
}

/// A context switch into a previously woken task: the scheduler reads the
/// fields the (possibly remote) waker wrote.
pub fn schedule_in(k: &mut Kernel, core: CoreId, at: Cycles, task: &TaskObjs) -> Cycles {
    let _ = at;
    let mut tracked = k
        .cache
        .access_tagged(core, task.ts, FieldTag::BothRwByRx, true);
    tracked.add(access_some(
        &mut k.cache,
        core,
        task.stack,
        FieldTag::BothRwByRx,
        true,
        4,
    ));
    k.charge(costs::SCHEDULE, tracked)
}

/// `shutdown()`: the server initiates teardown; returns the FIN to send.
pub fn sys_shutdown(k: &mut Kernel, core: CoreId, at: Cycles, conn: ConnId) -> (Cycles, u32) {
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let sock = conn_ref.sock;
    let mut tracked = lock_word_access(p.cache, core, sock);
    tracked.add(
        p.cache
            .access_tagged(core, sock, FieldTag::BothRwByApp, true),
    );
    tracked.add(access_some(p.cache, core, sock, FieldTag::AppOnly, true, 3));
    let hold = CONN_LOCK_HOLD_BASE + tracked.latency;
    let (_, spin) = conn_ref.lock.run_locked(at, hold, p.lockstat);
    let lock_overhead = p.lockstat.op_overhead();
    conn_ref.state = ConnState::Closing;
    let cycles = charge_parts(p.machine, p.perf, costs::SYS_SHUTDOWN, tracked);
    (cycles + spin + lock_overhead, 1)
}

/// `close()`: unhashes the connection and frees its objects on this core.
/// The caller removes the connection from the registry afterwards.
pub fn sys_close(k: &mut Kernel, core: CoreId, at: Cycles, conn: ConnId) -> Cycles {
    let tuple = k.conn(conn).tuple;
    let (_, w) = k
        .est
        .bucket_lock(&tuple)
        .run_locked(at, BUCKET_LOCK_HOLD, &mut k.lockstat);
    let spin = w;
    let lock_overhead = k.lockstat.op_overhead();
    let head = k.est.bucket_head(&tuple);
    let mut tracked = k
        .cache
        .access_tagged(core, head, FieldTag::GlobalNode, true);
    // Unlinking writes the neighbour's linkage fields.
    if let Some(nb) = k.est.chain_neighbor(&tuple, conn) {
        let nb_sock = k.conn(nb).sock;
        tracked.add(access_some(
            &mut k.cache,
            core,
            nb_sock,
            FieldTag::GlobalNode,
            true,
            2,
        ));
    }
    k.est.remove(&tuple);
    let sock = k.conn(conn).sock;
    tracked.add(
        k.cache
            .access_tagged(core, sock, FieldTag::GlobalNode, true),
    );
    // Drain anything the client left unread / unacknowledged.
    let (conns, p) = k.split();
    let conn_ref = conns.get_mut(&conn.0).expect("live connection");
    let segs = std::mem::take(&mut conn_ref.rcv_queue);
    let chunks = std::mem::take(&mut conn_ref.tx_inflight.chunks);
    let skbs = std::mem::take(&mut conn_ref.tx_inflight.skbs);
    let fd = conn_ref.fd.take();
    let meta = conn_ref.meta.take();
    conn_ref.state = ConnState::Closed;
    for seg in segs {
        tracked.add(p.slab.free(core, seg.skb, p.cache));
        tracked.add(p.slab.free(core, seg.page, p.cache));
    }
    for chunk in chunks {
        tracked.add(p.slab.free(core, chunk, p.cache));
    }
    for skb in skbs {
        tracked.add(p.slab.free(core, skb, p.cache));
    }
    if let Some(fd) = fd {
        tracked.add(p.slab.free(core, fd, p.cache));
    }
    if let Some(meta) = meta {
        tracked.add(p.slab.free(core, meta, p.cache));
    }
    tracked.add(p.slab.free(core, sock, p.cache));
    let cycles = charge_parts(p.machine, p.perf, costs::SYS_CLOSE, tracked);
    cycles + spin + lock_overhead
}

/// User-space request processing: the application parses the request,
/// finds the file (taking and dropping a reference on the globally shared
/// `file` object), and builds the response. Costs `app_cycles` of user
/// time plus the tracked accesses; charged to user time, not to a kernel
/// entry.
pub fn app_request(k: &mut Kernel, core: CoreId, file_idx: usize, app_cycles: Cycles) -> Cycles {
    let mut tracked = Access::default();
    if !k.files.is_empty() {
        let file = k.files[file_idx % k.files.len()];
        tracked.add(
            k.cache
                .access_tagged(core, file, FieldTag::GlobalNode, true),
        );
    }
    let cycles = app_cycles + tracked.latency;
    k.user_cycles += cycles;
    cycles
}

/// Amortized RCU softirq work, once per request.
pub fn rcu_tick(k: &mut Kernel) -> Cycles {
    k.charge(costs::SOFTIRQ_RCU, Access::default())
}

/// One `epoll_wait` (charged per request for event-driven servers).
pub fn sys_epoll_wait(k: &mut Kernel) -> Cycles {
    k.charge(costs::SYS_EPOLL_WAIT, Access::default())
}

/// Re-applies an entry charge with no tracked accesses (used by listen
/// socket implementations for bookkeeping-only invocations).
pub fn charge_fixed(k: &mut Kernel, ec: EntryCost) -> Cycles {
    k.charge(ec, Access::default())
}

/// Wakes a sleeping task from softirq context (outside the data-path ops
/// that fold the wake in): writes the target's scheduler state, charged
/// to `softirq_net_rx`.
pub fn wake_task(k: &mut Kernel, core: CoreId, target: &TaskObjs) -> Cycles {
    let tracked = wake_access(&mut k.cache, core, target);
    k.charge(costs::WAKE, tracked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::perf::KernelEntry;
    use sim::topology::Machine;

    const RX: CoreId = CoreId(0);
    const APP_REMOTE: CoreId = CoreId(12); // different chip on AMD
    const APP_LOCAL: CoreId = RX;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(Machine::amd48());
        k.init_files(100);
        k
    }

    fn establish(k: &mut Kernel, port: u16) -> (ConnId, ObjId) {
        let tuple = FlowTuple::client(1, port, 80);
        let (_, req) = syn(k, RX, 0, tuple, true);
        let (_, conn, req_obj) = ack_establish(k, RX, 1000, req, true).expect("established");
        (conn, req_obj)
    }

    #[test]
    fn full_connection_lifecycle() {
        let mut k = kernel();
        let (conn, req_obj) = establish(&mut k, 1234);
        assert_eq!(k.live_conns(), 1);
        assert_eq!(k.est.len(), 1);
        assert!(k.reqs.is_empty());

        accept_established(&mut k, APP_LOCAL, 2000, conn, req_obj);
        assert!(k.conn(conn).has_affinity());

        // One request/response round trip.
        data_rx(&mut k, RX, 3000, conn, 300, 0, None);
        assert_eq!(k.conn(conn).rcv_queue.len(), 1);
        let _ = sys_read(&mut k, APP_LOCAL, 4000, conn);
        assert!(k.conn(conn).rcv_queue.is_empty());
        app_request(&mut k, APP_LOCAL, 3, 50_000);
        let (_, pkts) = sys_writev(&mut k, APP_LOCAL, 5000, conn, 700);
        assert_eq!(pkts, 1);
        assert!(!k.conn(conn).tx_inflight.chunks.is_empty());
        data_ack_rx(&mut k, RX, 6000, conn);
        assert!(k.conn(conn).tx_inflight.chunks.is_empty());

        fin_rx(&mut k, RX, 7000, conn, None);
        assert_eq!(k.conn(conn).state, ConnState::Closing);
        sys_close(&mut k, APP_LOCAL, 8000, conn);
        assert_eq!(k.est.len(), 0);
        k.remove_conn(conn);
        assert_eq!(k.live_conns(), 0);
    }

    #[test]
    fn remote_app_core_costs_more_than_local() {
        // The paper's headline effect: processing the application half on
        // a remote core makes the kernel path substantially slower.
        let run = |app: CoreId| -> u64 {
            let mut k = kernel();
            let (conn, req_obj) = establish(&mut k, 999);
            accept_established(&mut k, app, 2000, conn, req_obj);
            let mut total = 0;
            for i in 0..20u64 {
                let t = 10_000 + i * 100_000;
                total += data_rx(&mut k, RX, t, conn, 300, 0, None);
                total += sys_read(&mut k, app, t + 20_000, conn).0;
                total += sys_writev(&mut k, app, t + 40_000, conn, 700).0;
                total += data_ack_rx(&mut k, RX, t + 60_000, conn);
            }
            total
        };
        let local = run(APP_LOCAL);
        let remote = run(APP_REMOTE);
        assert!(
            remote as f64 > local as f64 * 1.25,
            "remote {remote} local {local}"
        );
    }

    #[test]
    fn multi_packet_response() {
        let mut k = kernel();
        let (conn, req_obj) = establish(&mut k, 77);
        accept_established(&mut k, RX, 0, conn, req_obj);
        let (_, pkts) = sys_writev(&mut k, RX, 0, conn, 5670);
        assert_eq!(pkts, 4); // ceil(5670 / 1448)
        assert_eq!(k.conn(conn).tx_inflight.skbs.len(), 4);
    }

    #[test]
    fn counters_attributed_to_entries() {
        let mut k = kernel();
        let (conn, req_obj) = establish(&mut k, 5);
        accept_established(&mut k, RX, 0, conn, req_obj);
        data_rx(&mut k, RX, 0, conn, 300, 0, None);
        let _ = sys_read(&mut k, RX, 0, conn);
        assert_eq!(k.perf.entry(KernelEntry::SoftirqNetRx).calls, 3); // syn, ack, data
        assert_eq!(k.perf.entry(KernelEntry::SysRead).calls, 1);
        assert_eq!(k.perf.entry(KernelEntry::SysAccept4).calls, 1);
        assert!(k.perf.entry(KernelEntry::SoftirqNetRx).cycles > 0);
    }

    #[test]
    fn close_releases_everything() {
        let mut k = kernel();
        let before = k.slab.frees;
        let (conn, req_obj) = establish(&mut k, 8);
        accept_established(&mut k, RX, 0, conn, req_obj);
        data_rx(&mut k, RX, 0, conn, 300, 0, None); // leaves an unread segment
        sys_writev(&mut k, RX, 0, conn, 2000); // leaves unacked tx buffers
        sys_close(&mut k, RX, 0, conn);
        // req sock, skb+page, 2 chunks + 2 skbs, fd, sock.
        assert!(k.slab.frees >= before + 8, "frees {}", k.slab.frees);
    }

    #[test]
    fn wake_param_touches_task_objs() {
        let mut k = kernel();
        let t = k.new_task_objs(CoreId(30));
        let (conn, req_obj) = establish(&mut k, 3);
        accept_established(&mut k, CoreId(30), 0, conn, req_obj);
        let without = {
            let mut k2 = kernel();
            let (c2, r2) = establish(&mut k2, 3);
            accept_established(&mut k2, CoreId(30), 0, c2, r2);
            data_rx(&mut k2, RX, 0, c2, 300, 0, None)
        };
        let with = data_rx(&mut k, RX, 0, conn, 300, 0, Some(&t));
        assert!(with > without, "wake adds cost: {with} vs {without}");
    }

    #[test]
    fn cookie_synack_is_stateless() {
        let mut k = kernel();
        let allocs = k.slab.fresh_allocs + k.slab.recycled_allocs;
        let tuple = FlowTuple::client(1, 5555, 80);
        let c = cookie_synack(&mut k, RX, 0, tuple);
        assert!(c >= COOKIE_HASH_COST);
        assert!(k.reqs.is_empty(), "cookie path must not insert a request");
        assert_eq!(
            k.slab.fresh_allocs + k.slab.recycled_allocs,
            allocs,
            "cookie path must not allocate"
        );
    }

    #[test]
    fn cookie_establish_builds_a_full_connection() {
        let mut k = kernel();
        let tuple = FlowTuple::client(2, 5556, 80);
        cookie_synack(&mut k, RX, 0, tuple);
        let (_, conn, req_obj) = cookie_establish(&mut k, RX, 1000, tuple);
        assert_eq!(k.live_conns(), 1);
        assert_eq!(k.est.len(), 1);
        assert!(k.reqs.is_empty());
        assert_eq!(k.reqs.created(), 0, "cookies bypass the request table");
        // The rebuilt request socket feeds the normal accept path.
        accept_established(&mut k, APP_LOCAL, 2000, conn, req_obj);
        assert!(k.conn(conn).has_affinity());
        fin_rx(&mut k, RX, 3000, conn, None);
        sys_close(&mut k, APP_LOCAL, 4000, conn);
        k.remove_conn(conn);
        assert_eq!(k.live_conns(), 0);
    }

    #[test]
    fn reap_removes_and_frees_the_request() {
        let mut k = kernel();
        let tuple = FlowTuple::client(3, 5557, 80);
        let (_, req) = syn(&mut k, RX, 0, tuple, true);
        assert_eq!(k.reqs.len(), 1);
        let frees = k.slab.frees;
        assert!(synack_retransmit(&mut k, RX, req).is_some());
        assert!(reap_request(&mut k, RX, 1000, req, true).is_some());
        assert!(k.reqs.is_empty());
        assert_eq!(k.slab.frees, frees + 1);
        // Both are None once the request is gone.
        assert!(synack_retransmit(&mut k, RX, req).is_none());
        assert!(reap_request(&mut k, RX, 2000, req, true).is_none());
        assert_eq!(k.reqs.created(), 1);
    }

    #[test]
    fn user_cycles_accumulate() {
        let mut k = kernel();
        app_request(&mut k, RX, 0, 50_000);
        assert!(k.user_cycles >= 50_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sim::topology::Machine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random interleavings of connection lifecycles conserve kernel
        /// state: the established table tracks live connections, the
        /// request table drains, and slab frees balance what was consumed.
        #[test]
        fn lifecycle_conservation(
            ports in proptest::collection::vec(1u16..60_000, 1..25),
            serve_requests in 0u32..4,
        ) {
            let mut k = Kernel::new(Machine::amd48());
            k.init_files(10);
            let rx = CoreId(1);
            let app = CoreId(7);
            let mut conns = Vec::new();
            let mut at = 0u64;
            for port in &ports {
                let tuple = FlowTuple::client(u32::from(*port), *port, 80);
                let (_, req) = syn(&mut k, rx, at, tuple, true);
                at += 100_000;
                if let Some((_, conn, req_obj)) = ack_establish(&mut k, rx, at, req, true) {
                    at += 100_000;
                    accept_established(&mut k, app, at, conn, req_obj);
                    conns.push(conn);
                }
            }
            prop_assert_eq!(k.est.len(), conns.len());
            prop_assert!(k.reqs.is_empty());
            for conn in &conns {
                for _ in 0..serve_requests {
                    at += 100_000;
                    data_rx(&mut k, rx, at, *conn, 300, 0, None);
                    at += 100_000;
                    let _ = sys_read(&mut k, app, at, *conn);
                    at += 100_000;
                    sys_writev(&mut k, app, at, *conn, 700);
                    at += 100_000;
                    data_ack_rx(&mut k, rx, at, *conn);
                }
                prop_assert!(k.conn(*conn).rcv_queue.is_empty());
                prop_assert!(k.conn(*conn).tx_inflight.chunks.is_empty());
            }
            for conn in &conns {
                at += 100_000;
                fin_rx(&mut k, rx, at, *conn, None);
                at += 100_000;
                sys_close(&mut k, app, at, *conn);
                k.remove_conn(*conn);
            }
            prop_assert_eq!(k.live_conns(), 0);
            prop_assert_eq!(k.est.len(), 0);
        }
    }
}
