//! Instruction budgets and fixed miss counts per kernel entry point.
//!
//! The model charges each entry-point invocation:
//!
//! ```text
//! cycles = instr                      (CPI ≈ 1 on these machines)
//!        + extra_cycles               (pipeline effects, cold code)
//!        + base_misses × local-DRAM   (untracked code/data misses)
//!        + Σ tracked access latencies (the cache model — where the
//!                                      Fine/Affinity difference lives)
//! ```
//!
//! The constants below are calibrated so that an **Affinity-Accept** run at
//! 48 cores reproduces Table 3's Affinity column (the paper's own ground
//! truth for per-request instructions and cycles); Fine-Accept's larger
//! numbers are *not* tabulated anywhere — they emerge from remote-cache
//! latencies on the shared fields.
//!
//! Per-connection entries (accept, shutdown, close, …) are charged per
//! invocation; Table 3 divides by requests (6 per connection in the base
//! workload), which the harness reproduces.

use metrics::perf::KernelEntry;

/// Fixed cost profile of one entry-point invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryCost {
    /// Which entry this is charged to.
    pub entry: KernelEntry,
    /// Instructions retired.
    pub instr: u64,
    /// Untracked L2 misses (code, stacks, auxiliary data) served from
    /// local DRAM.
    pub base_misses: u64,
    /// Additional cycles beyond 1·instr and the miss stalls.
    pub extra_cycles: u64,
}

impl EntryCost {
    const fn new(entry: KernelEntry, instr: u64, base_misses: u64, extra_cycles: u64) -> Self {
        Self {
            entry,
            instr,
            base_misses,
            extra_cycles,
        }
    }
}

/// `softirq_net_rx` handling a SYN: request-socket allocation, request
/// hash insert, SYN-ACK emission.
pub const SOFTIRQ_SYN: EntryCost = EntryCost::new(KernelEntry::SoftirqNetRx, 18_000, 75, 7_000);
/// `softirq_net_rx` handling the handshake-completing ACK: child socket
/// creation, established-table insert, accept-queue handoff.
pub const SOFTIRQ_ACK_EST: EntryCost = EntryCost::new(KernelEntry::SoftirqNetRx, 19_000, 85, 7_500);
/// `softirq_net_rx` handling a data segment (an HTTP request).
pub const SOFTIRQ_DATA: EntryCost = EntryCost::new(KernelEntry::SoftirqNetRx, 17_000, 75, 6_000);
/// `softirq_net_rx` handling a bare ACK of transmitted data.
pub const SOFTIRQ_DATA_ACK: EntryCost =
    EntryCost::new(KernelEntry::SoftirqNetRx, 10_000, 48, 3_500);
/// `softirq_net_rx` handling a FIN.
pub const SOFTIRQ_FIN: EntryCost = EntryCost::new(KernelEntry::SoftirqNetRx, 12_000, 55, 4_500);
/// `sys_read` of one HTTP request.
pub const SYS_READ: EntryCost = EntryCost::new(KernelEntry::SysRead, 4_000, 26, 2_600);
/// One context switch.
pub const SCHEDULE: EntryCost = EntryCost::new(KernelEntry::Schedule, 8_200, 32, 3_600);
/// `sys_accept4`, charged once per connection.
pub const SYS_ACCEPT4: EntryCost = EntryCost::new(KernelEntry::SysAccept4, 12_500, 88, 12_000);
/// `sys_writev` of one HTTP response.
pub const SYS_WRITEV: EntryCost = EntryCost::new(KernelEntry::SysWritev, 4_200, 26, 3_200);
/// One `sys_poll` invocation of the event loop / worker wait.
pub const SYS_POLL: EntryCost = EntryCost::new(KernelEntry::SysPoll, 3_900, 13, 3_000);
/// `sys_shutdown`, charged once per connection.
pub const SYS_SHUTDOWN: EntryCost = EntryCost::new(KernelEntry::SysShutdown, 17_500, 40, 11_000);
/// One futex wait/wake pair (Apache's worker handoff), per request.
pub const SYS_FUTEX: EntryCost = EntryCost::new(KernelEntry::SysFutex, 8_100, 43, 3_200);
/// `sys_close`, charged once per connection.
pub const SYS_CLOSE: EntryCost = EntryCost::new(KernelEntry::SysClose, 11_800, 52, 6_200);
/// RCU softirq work, amortized once per request.
pub const SOFTIRQ_RCU: EntryCost = EntryCost::new(KernelEntry::SoftirqRcu, 204, 3, 39);
/// `sys_fcntl` (non-blocking setup), charged once per connection.
pub const SYS_FCNTL: EntryCost = EntryCost::new(KernelEntry::SysFcntl, 1_656, 0, 654);
/// `sys_getsockname`, charged once per connection.
pub const SYS_GETSOCKNAME: EntryCost = EntryCost::new(KernelEntry::SysGetsockname, 1_650, 6, 1_944);
/// `sys_epoll_wait`, amortized once per request.
pub const SYS_EPOLL_WAIT: EntryCost = EntryCost::new(KernelEntry::SysEpollWait, 600, 2, 1_160);

/// Transmit-completion handling per response (driver TX ring cleanup).
pub const SOFTIRQ_TX_COMPLETE: EntryCost =
    EntryCost::new(KernelEntry::SoftirqNetRx, 2_500, 10, 900);

/// A standalone wakeup issued from softirq context.
pub const WAKE: EntryCost = EntryCost::new(KernelEntry::SoftirqNetRx, 500, 2, 200);

/// Requests per connection in the paper's base workload.
pub const BASE_REQUESTS_PER_CONN: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-request instruction totals should land near Table 3's
    /// Affinity column for the base workload (6 requests per connection).
    #[test]
    fn per_request_instruction_budget_matches_table3() {
        let rpc = f64::from(BASE_REQUESTS_PER_CONN);
        // softirq net rx per request: one data + one data-ack, plus the
        // handshake (SYN + ACK) and teardown (FIN) amortized.
        let net_rx = SOFTIRQ_DATA.instr as f64
            + SOFTIRQ_DATA_ACK.instr as f64
            + (SOFTIRQ_SYN.instr + SOFTIRQ_ACK_EST.instr + SOFTIRQ_FIN.instr) as f64 / rpc;
        assert!(
            (net_rx - 34_000.0).abs() < 5_000.0,
            "softirq instr/request {net_rx}"
        );
        let accept = SYS_ACCEPT4.instr as f64 / rpc;
        assert!((accept - 2_200.0).abs() < 700.0, "accept4 {accept}");
        let shutdown = SYS_SHUTDOWN.instr as f64 / rpc;
        assert!((shutdown - 3_000.0).abs() < 500.0, "shutdown {shutdown}");
        let close = SYS_CLOSE.instr as f64 / rpc;
        assert!((close - 2_000.0).abs() < 300.0, "close {close}");
    }

    #[test]
    fn entry_assignment_is_consistent() {
        for c in [
            SOFTIRQ_SYN,
            SOFTIRQ_ACK_EST,
            SOFTIRQ_DATA,
            SOFTIRQ_DATA_ACK,
            SOFTIRQ_FIN,
        ] {
            assert_eq!(c.entry, KernelEntry::SoftirqNetRx);
        }
        assert_eq!(SYS_READ.entry, KernelEntry::SysRead);
        assert_eq!(SCHEDULE.entry, KernelEntry::Schedule);
    }
}
