#!/bin/bash
cd /root/repo
for b in table1 table5 table2 table3 table4 fig4 lb_migration lb_latency fig2 fig3 fig9 fig7 fig10 fig5 fig6 fig8; do
  echo "=== running $b at $(date +%H:%M:%S) ==="
  ./target/release/$b > results/$b.txt 2> results/$b.err
  echo "=== $b done at $(date +%H:%M:%S) ==="
done
echo ALL_EXPERIMENTS_DONE
