#!/bin/bash
cd /root/repo
for b in fig5 fig6 table3 table4 fig4 fig2 table2 fig7 fig10 fig9 fig3 lb_latency lb_migration; do
  echo "=== running $b at $(date +%H:%M:%S) ==="
  ./target/release/$b > results/$b.txt 2> results/$b.err
done
echo FINAL_DONE
