//! Offline stub of `criterion`.
//!
//! Implements the group / `bench_function` / `iter` surface the
//! `hot_paths` bench uses, timing each benchmark with `std::time::Instant`
//! and printing a median-of-samples nanoseconds-per-iteration line. No
//! statistics engine, plots, or baselines — enough to keep the bench
//! compiling and to give a usable perf signal offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching real criterion's convenience.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 60;
/// Target wall-clock time per sample while calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), DEFAULT_SAMPLES, f);
        self
    }
}

/// A named group sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra in the stub).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes long enough to time meaningfully.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        iters = (iters * 4).min(1 << 24);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!("{name:<40} median {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters} iters x {samples} samples)");
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
