//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The derives expand to nothing: no code in the workspace is bounded on
//! the serde traits, so an empty expansion is enough to keep every
//! `#[derive(Serialize, Deserialize)]` site compiling without crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
