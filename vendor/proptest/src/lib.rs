//! Offline stub of `proptest`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this crate re-implements the slice of proptest's API the tests use:
//! the `proptest!` macro (with `#![proptest_config(..)]`), `prop_assert*`,
//! integer/float range strategies, tuple strategies, `any::<T>()`, and
//! `proptest::collection::vec`. Generation is a seeded splitmix64 stream,
//! so every run of the suite sees the same cases — in a repo whose whole
//! point is determinism, that is a feature, not a shortcut.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — failures print the generated inputs instead;
//! * no persistence of failing seeds (cases are fixed per build anyway);
//! * `prop_assume!` ends the case successfully rather than re-drawing.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `elem` values with a length drawn
    /// uniformly from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// item expands to a zero-argument function (keeping any attributes,
/// including `#[test]`) that runs `body` over `config.cases` generated
/// inputs and panics with the inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let inputs = ::std::format!(
                    ::core::concat!($(::core::stringify!($arg), " = {:?}; ",)*),
                    $(&$arg,)*
                );
                let result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    ::core::panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (early-returns a `TestCaseError`) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, ::core::concat!("assertion failed: ", ::core::stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` over equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert!` over inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Skips the rest of the case when the assumption does not hold (the stub
/// counts the case as passed instead of redrawing inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
