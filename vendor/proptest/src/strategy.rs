//! Value-generation strategies: the stub's equivalent of
//! `proptest::strategy::Strategy`, without shrinking.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates one value per case from an RNG. Unlike real proptest there
/// is no value tree: a failing case reports its inputs but does not
/// shrink them.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = rng.next_u64() as f32 / (u64::MAX as f32 + 1.0);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Always yields a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Builds the full-domain strategy for `T`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `proptest::collection::vec`'s strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::bounds", 0);
        for _ in 0..1_000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let s = (-4i64..9).generate(&mut rng);
            assert!((-4..9).contains(&s));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_case("strategy::vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("strategy::tuple", 0);
        let (a, b) = (0u64..4, any::<bool>()).generate(&mut rng);
        assert!(a < 4);
        let _: bool = b;
    }
}
