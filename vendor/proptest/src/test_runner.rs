//! Case execution support: configuration, the per-case RNG, and the
//! error type `prop_assert!` early-returns.

use std::fmt;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the stub trades depth for suite
        // latency since full-run properties here can take seconds each.
        Self { cases: 32 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case RNG: a splitmix64 stream seeded from the test's
/// path and the case index, so every build and run draws identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `path`.
    #[must_use]
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the test path gives each property its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
