//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on value types but
//! never invokes a serializer (report output is hand-rolled JSON in
//! `metrics::json`), so this stub only has to make the derives compile.
//! The real traits carry serializer/deserializer methods; here they are
//! empty marker traits, and the derive macros (re-exported from the
//! sibling `serde_derive` stub) emit empty impls.
//!
//! Swap this for the real crates.io `serde` by restoring the registry
//! dependency in the workspace `Cargo.toml`; no call sites change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
