//! Times repeated runs of one end-to-end config (fingerprint overhead check).
use affinity_accept_repro::prelude::*;
use sim::time::ms;

fn main() {
    let mut total = 0u64;
    let start = std::time::Instant::now();
    for seed in 0..6u64 {
        let mut cfg = RunConfig::new(
            Machine::amd48(),
            16,
            ListenKind::Affinity,
            ServerKind::apache(),
            Workload::base(),
            30_000.0,
        );
        cfg.warmup = ms(250);
        cfg.measure = ms(200);
        cfg.tracked_files = 200;
        cfg.seed = seed + 1;
        let r = Runner::new(cfg).run();
        total += r.served;
    }
    println!("served={total} elapsed={:?}", start.elapsed());
}
