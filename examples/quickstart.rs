//! Quickstart: run a small simulated web server under each listen-socket
//! implementation and compare throughput and connection affinity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use affinity_accept_repro::prelude::*;

fn main() {
    println!("Affinity-Accept quickstart: 8 cores of the simulated AMD machine\n");
    println!(
        "{:<10} {:>12} {:>8} {:>10} {:>8}",
        "impl", "req/s/core", "idle%", "affinity%", "drops"
    );
    for listen in [ListenKind::Stock, ListenKind::Fine, ListenKind::Affinity] {
        let mut cfg = RunConfig::new(
            Machine::amd48(),
            8,
            listen,
            ServerKind::apache(),
            Workload::base(),
            8_000.0, // offered connections/second (48k requests/second)
        );
        cfg.warmup = sim::time::ms(300);
        cfg.measure = sim::time::ms(250);
        let r = Runner::new(cfg).run();
        println!(
            "{:<10} {:>12.0} {:>8.1} {:>10.1} {:>8}",
            listen.label(),
            r.rps_per_core,
            r.idle_frac * 100.0,
            r.affinity_frac * 100.0,
            r.drops_overflow + r.drops_nic,
        );
    }
    println!(
        "\nAffinity-Accept accepts connections on the core the NIC steers them\n\
         to, so its affinity fraction is ~100% — every packet, syscall, and\n\
         buffer for a connection stays on one core."
    );
}
