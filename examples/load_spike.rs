//! Connection stealing under a load spike (§3.3.1).
//!
//! Drives the Affinity-Accept listen socket directly: one core is flooded
//! with connections until it crosses the busy high-watermark, then a
//! non-busy core accepts — watch the 5:1 proportional share between its
//! own queue and the busy victim's.
//!
//! ```sh
//! cargo run --release --example load_spike
//! ```

use affinity_accept_repro::prelude::*;
use sim::topology::CoreId;

fn establish(s: &mut AffinityAccept, k: &mut Kernel, core: CoreId, port: u16, at: u64) {
    let tuple = FlowTuple::client(1, port, 80);
    s.on_syn(k, core, at, tuple);
    let (_, out) = s.on_ack(k, core, at + 1_000, tuple);
    assert!(
        matches!(out, affinity_accept::AckOutcome::Enqueued { .. }),
        "queue overflowed"
    );
}

fn main() {
    let mut k = Kernel::new(Machine::amd48());
    let mut cfg = ListenConfig::paper(4);
    cfg.max_backlog = 64; // max local queue 16, busy above 12
    let mut s = AffinityAccept::new(&mut k, cfg);

    // Flood core 1 until it is marked busy.
    let mut at = 0u64;
    let mut port = 1000u16;
    while !s.busy_tracker().is_busy(CoreId(1)) {
        establish(&mut s, &mut k, CoreId(1), port, at);
        port += 1;
        at += 20_000;
    }
    println!(
        "core 1 marked busy after {} enqueues (queue length {})",
        port - 1000,
        s.queued_on(CoreId(1))
    );
    println!("busy bit vector: {:#b}", s.busy_tracker().bitmap());

    // Keep core 0 supplied with a trickle of local connections and let it
    // accept 24 times; count where they came from.
    let (mut local, mut stolen) = (0u32, 0u32);
    for i in 0..24 {
        if s.queued_on(CoreId(0)) < 2 {
            establish(&mut s, &mut k, CoreId(0), port, at);
            port += 1;
            at += 20_000;
        }
        match s.try_accept(&mut k, CoreId(0), at + i * 30_000) {
            AcceptOutcome::Accepted {
                stolen: st, item, ..
            } => {
                if st {
                    stolen += 1;
                } else {
                    local += 1;
                }
                // Finish the accept so the kernel state stays consistent.
                tcp::ops::accept_established(&mut k, CoreId(0), at, item.conn, item.req_obj);
            }
            AcceptOutcome::Empty { .. } => {}
        }
    }
    println!("core 0 accepted {local} local / {stolen} stolen (5:1 proportional share)");
    assert!(local > stolen, "local connections keep priority");
    assert!(stolen > 0, "busy victims do get relieved");
    println!("stats: {:?}", s.stats());
}
