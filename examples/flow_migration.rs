//! Flow-group migration (§3.3.2): sustained stealing reprograms the NIC.
//!
//! A full simulated run with a CPU-hogging batch job on half the cores:
//! the connection load balancer first steals connections from the hogged
//! cores, then — every 100 ms — migrates one flow group per stealing core
//! away from its most-raided victim, moving packet processing off the
//! busy cores entirely.
//!
//! ```sh
//! cargo run --release --example flow_migration
//! ```

use affinity_accept_repro::prelude::*;

fn run(migration: bool) -> RunResult {
    let mut cfg = RunConfig::new(
        Machine::amd48(),
        8,
        ListenKind::Affinity,
        ServerKind::lighttpd(),
        Workload::base(),
        6_000.0,
    );
    cfg.app_cycles = cfg.server.app_cycles();
    cfg.warmup = sim::time::ms(300);
    cfg.measure = sim::time::ms(600);
    cfg.hog_work = Some(sim::time::secs(10)); // runs throughout
    cfg.migrate_enabled = migration;
    // Compressed time scale: migrate proportionally faster than the
    // paper's 100 ms so the short demo run reaches the steady state.
    cfg.migrate_interval = sim::time::ms(5);
    cfg.measure = sim::time::ms(900);
    Runner::new(cfg).run()
}

fn main() {
    println!("8 cores; a batch job occupies cores 4-7; web load wants ~60% of the machine\n");
    for migration in [false, true] {
        let r = run(migration);
        println!(
            "migration {}: {:>6.0} req/s/core, {:>5} stolen accepts, {:>3} flow groups migrated, median latency {:.0} ms",
            if migration { "on " } else { "off" },
            r.rps_per_core,
            r.listen_stats.accepts_stolen,
            r.migrations,
            sim::time::to_ms(r.latency.median()),
        );
    }
    println!(
        "\nWith migration enabled the FDir table is reprogrammed so the hogged\n\
         cores stop receiving the web server's packets; stealing becomes\n\
         unnecessary and every connection is local again."
    );
}
