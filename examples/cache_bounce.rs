//! The cache-line bouncing effect the paper is built around (§2.2),
//! demonstrated directly on the coherence model.
//!
//! A `tcp_sock`'s packet-side fields are written by the softirq core and
//! read by the application core. When those are different cores on
//! different chips (Fine-Accept's situation), every direction switch
//! re-fetches the lines across the interconnect at 460+ cycles; on one
//! core everything comes from L1 at 3 cycles.
//!
//! ```sh
//! cargo run --release --example cache_bounce
//! ```

use affinity_accept_repro::prelude::*;
use mem::layout::FieldTag;
use sim::topology::CoreId;

fn simulate_requests(cache: &mut CacheModel, rx: CoreId, app: CoreId, n: u32) -> u64 {
    let sock = cache.alloc(DataType::TcpSock, rx);
    let mut cycles = 0;
    for _ in 0..n {
        // Packet side: write receive state, read send state.
        cycles += cache
            .access_tagged(rx, sock, FieldTag::BothRwByRx, true)
            .latency;
        cycles += cache
            .access_tagged(rx, sock, FieldTag::BothRwByApp, false)
            .latency;
        // Application side: read receive state, write send state.
        cycles += cache
            .access_tagged(app, sock, FieldTag::BothRwByRx, false)
            .latency;
        cycles += cache
            .access_tagged(app, sock, FieldTag::BothRwByApp, true)
            .latency;
    }
    cache.free(sock);
    cycles
}

fn main() {
    let machine = Machine::amd48();
    let mut cache = CacheModel::new(machine);
    const N: u32 = 1000;

    let local = simulate_requests(&mut cache, CoreId(0), CoreId(0), N);
    let same_chip = simulate_requests(&mut cache, CoreId(0), CoreId(1), N);
    let cross_chip = simulate_requests(&mut cache, CoreId(0), CoreId(12), N);

    println!("cycles spent on tcp_sock state for {N} request round-trips:");
    println!(
        "  same core (Affinity-Accept):   {:>9}  ({:.1} cyc/request)",
        local,
        local as f64 / f64::from(N)
    );
    println!(
        "  same chip, different core:     {:>9}  ({:.1} cyc/request)",
        same_chip,
        same_chip as f64 / f64::from(N)
    );
    println!(
        "  different chips (Fine-Accept): {:>9}  ({:.1} cyc/request)",
        cross_chip,
        cross_chip as f64 / f64::from(N)
    );
    println!(
        "\ncross-chip is {:.0}x the single-core cost — the paper's Table 4\n\
         measures exactly this bouncing on the production workload",
        cross_chip as f64 / local as f64
    );
    assert!(cross_chip > 10 * local);
}
